package collector

import (
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/pipeline"
)

// This file is the Server's construction surface: functional options
// over the resolved Config. Callers build a collector as
//
//	srv, err := collector.New(engine,
//		collector.WithSink(sink),
//		collector.WithQueries(queries...),
//		collector.WithEpoch(7),
//		collector.WithTenantPolicy(policy))
//
// and New validates the resolved form once, up front — a nil engine or
// an inconsistent sink/durable pairing errors at construction instead of
// panicking somewhere inside Serve. Config stays exported as the
// resolved, documented form (it is what the options write into), but the
// options are the constructor's API.

// Option mutates the resolved Config during New. Nil options are
// ignored.
type Option func(*Config)

// WithSink directs every decoded digest batch into sink. Each
// connection ingests concurrently through its own pipeline.Stage;
// Shutdown flushes and barriers the sink; the caller still owns Close.
// Exactly one of WithSink or WithDurable is required (WithDurable
// implies its own sink).
func WithSink(sink *pipeline.Sink) Option {
	return func(c *Config) { c.Sink = sink }
}

// WithQueries lists the engine's queries for the HTTP snapshot
// endpoints. Without it /snapshot serves empty answer sets.
func WithQueries(queries ...core.Query) Option {
	return func(c *Config) { c.Queries = queries }
}

// WithEpoch sets the cluster partitioning epoch this collector belongs
// to (0, the default, means standalone). Sessions whose Hello carries a
// different epoch are refused with wire.AckEpochMismatch.
func WithEpoch(epoch uint64) Option {
	return func(c *Config) { c.Epoch = epoch }
}

// WithMaxFramePayload caps a frame's payload bytes (default
// wire.DefaultMaxFramePayload). Larger frames kill the connection.
func WithMaxFramePayload(n int) Option {
	return func(c *Config) { c.MaxFramePayload = n }
}

// WithDurable attaches the collector's durable tier (built with
// OpenDurableSink): the sink defaults to d.Sink, /snapshot gains the
// ?since=/?until= historical window parameters, and the server owns the
// checkpoint cadence. The caller still owns d.Close after Shutdown.
func WithDurable(d *DurableSink) Option {
	return func(c *Config) { c.Durable = d }
}

// WithCheckpointEvery sets the background checkpoint+fsync interval
// when a durable tier is attached (default 1s; negative disables the
// cadence — checkpoints then happen only at Shutdown or by explicit
// call).
func WithCheckpointEvery(every time.Duration) Option {
	return func(c *Config) { c.CheckpointEvery = every }
}

// WithHandshakeTimeout bounds how long a new connection may take to
// present its Hello (default 10s), shedding dead or non-protocol
// connections.
func WithHandshakeTimeout(d time.Duration) Option {
	return func(c *Config) { c.HandshakeTimeout = d }
}

// WithLogf directs one line per session event (open, close, error) to
// logf. The default is silent.
func WithLogf(logf func(format string, args ...any)) Option {
	return func(c *Config) { c.Logf = logf }
}

// WithTenantPolicy enables the multi-tenant QoS layer (internal/admit):
// per-tenant token-bucket quotas, optional AIMD capacity control from
// sink stall feedback, and probabilistic load shedding at a published
// per-tenant sampling rate. The zero policy (the default) disables the
// layer entirely — every frame is admitted whole and ingest is
// byte-identical to a collector built without tenancy.
func WithTenantPolicy(policy admit.Policy) Option {
	return func(c *Config) { c.TenantPolicy = policy }
}

// New builds a Server for engine from functional options, validating
// the resolved configuration: the engine must be non-nil, a sink must
// come from WithSink or WithDurable (and may not contradict the durable
// tier's own), and the tenant policy must validate. See Config for the
// resolved form the options populate.
func New(engine *core.Engine, opts ...Option) (*Server, error) {
	cfg := Config{Engine: engine}
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	return newServer(cfg)
}
