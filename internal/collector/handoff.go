package collector

import (
	"fmt"
	"net"

	"repro/internal/core"
	"repro/internal/wire"
)

// Fleet-resize hand-off: the collector-side drain/import path. During a
// resize the coordinator (internal/federation) asks each member that is
// losing flows to ExportFlows them — an atomic per-flow drain+evict on
// the owning shard's worker — and ships the states to each flow's new
// home with SendHandoff, an ordinary handshaked session at the new epoch
// whose frames carry hand-off payloads instead of digest batches. The
// receiving session (handleConn) folds every state into its sink via
// core.Recording.RestoreFlowState, i.e. Recording.Merge — the same fold
// the query frontend uses — so post-resize answers are byte-identical to
// a fleet that ran at the new membership from the start.
//
// Ordering is the coordinator's job: a destination must import a moving
// flow's state before it ingests any fresh digest for that flow (Merge
// refuses duplicate flows precisely to make a split detectable), so the
// new fleet map is published to exporters only after every hand-off
// session has closed.

// handoffFrameBudget caps one hand-off frame's payload bytes, comfortably
// under the default frame limit while amortizing framing over many small
// flow states.
const handoffFrameBudget = 512 << 10

// ExportFlows drains the listed flows out of this collector: for each
// flow that is tracked here, its complete recording state is serialized
// (decoders, sketches with RNG positions, series) and the flow is
// evicted, atomically with respect to ingest on the owning shard's
// worker. Flows not tracked here are skipped — the caller plans moves
// from a membership-wide flow list. A durable collector refuses: its
// segment log would resurrect the exported flows on replay (resize of a
// durable member needs a log marker — see ROADMAP).
func (s *Server) ExportFlows(flows []core.FlowKey) ([]wire.FlowState, error) {
	if s.cfg.Durable != nil {
		return nil, fmt.Errorf("collector: hand-off out of a durable collector is not supported (log replay would resurrect the moved flows)")
	}
	if len(s.cfg.Queries) == 0 {
		return nil, fmt.Errorf("collector: hand-off requires the server's query list (WithQueries)")
	}
	out := make([]wire.FlowState, 0, len(flows))
	for _, flow := range flows {
		var blob []byte
		s.ingestGate.RLock()
		err := s.cfg.Sink.WithFlow(flow, func(rec *core.Recording) error {
			if !rec.HasFlow(flow) {
				return nil
			}
			b, err := rec.AppendFlowState(nil, s.cfg.Queries, flow)
			if err != nil {
				return err
			}
			blob = b
			rec.Evict(flow)
			return nil
		})
		s.ingestGate.RUnlock()
		if err != nil {
			return out, fmt.Errorf("collector: exporting flow %d: %w", flow, err)
		}
		if blob != nil {
			out = append(out, wire.FlowState{Flow: flow, State: blob})
		}
	}
	return out, nil
}

// HandoffFlows returns how many flows this collector has imported over
// the hand-off path since it started.
func (s *Server) HandoffFlows() uint64 { return s.handoffFlows.Load() }

// ingestHandoffFrame folds one hand-off frame's flow states into the
// sink, each on its owning shard's worker, and returns how many flows
// were imported. Any error (durable member, unknown query, duplicate
// flow, corrupt state) refuses the whole frame and tears the session
// down — a partially-imported resize must be loud, not silent.
func (s *Server) ingestHandoffFrame(payload []byte) (int, error) {
	if s.cfg.Durable != nil {
		return 0, fmt.Errorf("collector: hand-off into a durable collector is not supported (imported state would not survive log replay)")
	}
	if len(s.cfg.Queries) == 0 {
		return 0, fmt.Errorf("collector: hand-off requires the server's query list (WithQueries)")
	}
	states, err := wire.AppendUnmarshalHandoff(nil, payload)
	if err != nil {
		return 0, err
	}
	for i, fs := range states {
		fs := fs
		s.ingestGate.RLock()
		err := s.cfg.Sink.WithFlow(fs.Flow, func(rec *core.Recording) error {
			return rec.RestoreFlowState(s.cfg.Queries, fs.Flow, fs.State)
		})
		s.ingestGate.RUnlock()
		if err != nil {
			return i, fmt.Errorf("collector: importing flow %d: %w", fs.Flow, err)
		}
	}
	return len(states), nil
}

// SendHandoff ships drained flow states to a collector at addr over an
// ordinary handshaked session (hello must carry the destination's plan
// hash and — critically — the *new* cluster epoch), batching states into
// CRC-framed hand-off payloads. It returns the number of flows shipped.
// The connection is closed before returning; a clean close means the
// destination read and imported every frame (any import error tears the
// connection down, which surfaces here as a write/close error on all but
// the smallest migrations — callers should verify flow counts end to
// end, which the federation coordinator does).
func SendHandoff(addr string, hello wire.Hello, states []wire.FlowState) (int, error) {
	if len(states) == 0 {
		return 0, nil
	}
	conn, err := net.DialTimeout("tcp", addr, handshakeTimeout)
	if err != nil {
		return 0, err
	}
	ex, err := NewExporter(conn, hello)
	if err != nil {
		conn.Close()
		return 0, err
	}
	sent := 0
	var frame []byte
	batch := make([]wire.FlowState, 0, len(states))
	bytesInBatch := 0
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		payload := wire.AppendMarshalHandoff(nil, batch)
		fr, err := wire.AppendFrame(frame[:0], payload)
		if err != nil {
			return err
		}
		frame = fr
		if _, err := ex.conn.Write(frame); err != nil {
			return err
		}
		sent += len(batch)
		batch = batch[:0]
		bytesInBatch = 0
		return nil
	}
	for _, fs := range states {
		if bytesInBatch > 0 && bytesInBatch+len(fs.State) > handoffFrameBudget {
			if err := flush(); err != nil {
				ex.Close()
				return sent, err
			}
		}
		batch = append(batch, fs)
		bytesInBatch += len(fs.State) + 16
	}
	if err := flush(); err != nil {
		ex.Close()
		return sent, err
	}
	// Close flushes nothing further (the frames were written directly)
	// but ends the session cleanly, so the destination reads to EOF — its
	// deferred sink flush then makes every imported flow queryable.
	return sent, ex.Close()
}
