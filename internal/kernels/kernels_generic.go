//go:build !amd64 || !amd64.v3 || purego

package kernels

// Accelerated reports whether this build uses the vectorized kernel
// bodies (false here: portable scalar loops only).
const Accelerated = false

func hashPktHop(dst, pkt []uint64, x, hb uint64) { hashPktHopScalar(dst, pkt, x, hb) }

func hashFixedA(dst, b []uint64, h1 uint64) { hashFixedAScalar(dst, b, h1) }

func hash2Cols(dst, a, b []uint64, x uint64) { hash2ColsScalar(dst, a, b, x) }
