// Package kernels holds the columnar primitives behind the op-major
// encode hot path: batch evaluations of the splitmix64-style global hash
// family over flat []uint64 columns.
//
// The package sits *below* internal/hash in the dependency order (hash's
// column helpers call into it), so the mixing constants are duplicated
// here; an equivalence test asserts every kernel agrees bit-for-bit with
// the scalar reference in internal/hash for all input lengths, including
// the vector-width tails.
//
// Each kernel has two implementations selected at build time:
//
//   - *_generic: portable Go loops, compiled everywhere, and the only
//     implementation under the `purego` build tag;
//   - *_amd64.s: AVX2 four-lane variants, compiled only when the target
//     guarantees AVX2 at build time (GOAMD64=v3 or higher), so no runtime
//     CPU feature detection is needed.
//
// The dispatch rule is deliberately boring: a kernel wrapper peels the
// largest multiple of the vector width through the asm body and finishes
// the tail with the same scalar loop the generic build uses. Adding a
// kernel means adding the scalar loop here, the asm body plus wrapper in
// the _amd64 files, and a row in the equivalence test.
package kernels

// Mixing constants of the splitmix64 family — must match internal/hash
// (asserted by TestKernelConstantsMatchHash).
const (
	golden = 0x9e3779b97f4a7c15
	mixA   = 0xbf58476d1ce4e5b9
	mixB   = 0x94d049bb133111eb
)

// blockLanes is the number of 64-bit lanes one vector iteration handles.
const blockLanes = 4

// mix64 is the splitmix64 finalizer (identical to hash.Mix64).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= mixA
	x ^= x >> 27
	x *= mixB
	x ^= x >> 31
	return x
}

// HashPktHop fills dst[i] = Hash2(seed; pkt[i], hop): the act-decision
// hash g(pkt, hop) with the hop argument loop-invariant — the shape of
// every reservoir/act column in the encode hot path. dst and pkt must
// have equal length.
func HashPktHop(dst, pkt []uint64, seed, hop uint64) {
	if len(dst) != len(pkt) {
		panic("kernels: HashPktHop column length mismatch")
	}
	hashPktHop(dst, pkt, seed^golden, hop*mixA+2)
}

// Hash2Prefix returns the first-round state of Hash2(seed; a, ·), i.e.
// Mix64((seed^golden) ^ (a·golden+1)). Callers with a fixed first
// argument hoist it once and stream the second argument through
// HashFixedA.
func Hash2Prefix(seed, a uint64) uint64 {
	return mix64((seed ^ golden) ^ (a*golden + 1))
}

// HashFixedA fills dst[i] = Hash2(seed; a, b[i]) given the hoisted
// prefix h1 = Hash2Prefix(seed, a). dst and b must have equal length.
func HashFixedA(dst, b []uint64, h1 uint64) {
	if len(dst) != len(b) {
		panic("kernels: HashFixedA column length mismatch")
	}
	hashFixedA(dst, b, h1)
}

// Hash2Cols fills dst[i] = Hash2(seed; a[i], b[i]): the value-hash shape
// h(value, pkt) of payload columns. dst, a, and b must have equal length.
func Hash2Cols(dst, a, b []uint64, seed uint64) {
	if len(dst) != len(a) || len(dst) != len(b) {
		panic("kernels: Hash2Cols column length mismatch")
	}
	hash2Cols(dst, a, b, seed^golden)
}

// hashPktHopScalar is the scalar reference body: x = seed^golden and
// hb = hop·mixA+2 are the caller-hoisted loop invariants.
func hashPktHopScalar(dst, pkt []uint64, x, hb uint64) {
	for i, p := range pkt {
		dst[i] = mix64(mix64(x^(p*golden+1)) ^ hb)
	}
}

func hashFixedAScalar(dst, b []uint64, h1 uint64) {
	for i, v := range b {
		dst[i] = mix64(h1 ^ (v*mixA + 2))
	}
}

func hash2ColsScalar(dst, a, b []uint64, x uint64) {
	for i := range dst {
		dst[i] = mix64(mix64(x^(a[i]*golden+1)) ^ (b[i]*mixA + 2))
	}
}
