//go:build amd64 && amd64.v3 && !purego

#include "textflag.h"

// AVX2 bodies of the splitmix64 column kernels, four 64-bit lanes per
// iteration. Wrappers in kernels_amd64.go guarantee n > 0 and n % 4 == 0
// and run the tail through the shared scalar loops.
//
// Register plan (fixed across all three kernels):
//   Y0/Y1  golden / golden with dword halves swapped
//   Y2/Y3  mixA   / swapped
//   Y4/Y5  mixB   / swapped
//   Y6     qword 1 broadcast
//   Y7     qword 2 broadcast
//   Y8     seed-derived invariant (x or h1)
//   Y9     second invariant (hb)
//   Y10    lane accumulator V
//   Y11    second input column W
//   Y12-14 temporaries
//   X15    scratch for GPR->YMM broadcasts

#define YG   Y0
#define YGS  Y1
#define YA   Y2
#define YAS  Y3
#define YB   Y4
#define YBS  Y5
#define YK1  Y6
#define YK2  Y7
#define YX   Y8
#define YHB  Y9
#define RV   Y10
#define RW   Y11
#define RT1  Y12
#define RT2  Y13
#define RT3  Y14

// BCASTQ broadcasts a 64-bit immediate or GPR value into every lane of
// YREG via the X15 scratch lane.
#define BCASTQ(val, YREG) \
	MOVQ         val, AX; \
	VMOVQ        AX, X15; \
	VPBROADCASTQ X15, YREG

// MUL64 computes V *= c lane-wise for a broadcast constant c, where C
// holds c and CS holds c with the 32-bit halves of each lane swapped.
// AVX2 has no VPMULLQ, so build it from 32-bit products:
//   lo64(v*c) = lo32(v)*lo32(c) + ((lo32(v)*hi32(c) + hi32(v)*lo32(c)) << 32)
#define MUL64(V, C, CS, T1, T2) \
	VPMULLD  CS, V, T1; \
	VPSRLQ   $32, T1, T2; \
	VPADDD   T2, T1, T1; \
	VPSLLQ   $32, T1, T1; \
	VPMULUDQ C, V, V; \
	VPADDQ   T1, V, V

// MIX64 applies the splitmix64 finalizer to each lane of V.
#define MIX64(V, T1, T2, T3) \
	VPSRLQ $30, V, T3; \
	VPXOR  T3, V, V; \
	MUL64(V, YA, YAS, T1, T2); \
	VPSRLQ $27, V, T3; \
	VPXOR  T3, V, V; \
	MUL64(V, YB, YBS, T1, T2); \
	VPSRLQ $31, V, T3; \
	VPXOR  T3, V, V

// LOADMIXCONSTS materializes the mixA/mixB multiplier lanes MIX64 needs.
#define LOADMIXCONSTS \
	BCASTQ($0xbf58476d1ce4e5b9, YA); \
	VPSHUFD $0xB1, YA, YAS; \
	BCASTQ($0x94d049bb133111eb, YB); \
	VPSHUFD $0xB1, YB, YBS

// LOADGOLDEN materializes the golden-ratio multiplier lanes.
#define LOADGOLDEN \
	BCASTQ($0x9e3779b97f4a7c15, YG); \
	VPSHUFD $0xB1, YG, YGS

// func hashPktHopAVX2(dst, pkt *uint64, n uint64, x, hb uint64)
// dst[i] = mix64(mix64(x ^ (pkt[i]*golden + 1)) ^ hb)
TEXT ·hashPktHopAVX2(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ pkt+8(FP), SI
	MOVQ n+16(FP), CX
	LOADGOLDEN
	LOADMIXCONSTS
	BCASTQ($1, YK1)
	BCASTQ(x+24(FP), YX)
	BCASTQ(hb+32(FP), YHB)

pktloop:
	VMOVDQU (SI), RV
	MUL64(RV, YG, YGS, RT1, RT2)
	VPADDQ  YK1, RV, RV
	VPXOR   YX, RV, RV
	MIX64(RV, RT1, RT2, RT3)
	VPXOR   YHB, RV, RV
	MIX64(RV, RT1, RT2, RT3)
	VMOVDQU RV, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $4, CX
	JNZ     pktloop
	VZEROUPPER
	RET

// func hashFixedAAVX2(dst, b *uint64, n uint64, h1 uint64)
// dst[i] = mix64(h1 ^ (b[i]*mixA + 2))
TEXT ·hashFixedAAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ b+8(FP), SI
	MOVQ n+16(FP), CX
	LOADMIXCONSTS
	BCASTQ($2, YK2)
	BCASTQ(h1+24(FP), YX)

fixaloop:
	VMOVDQU (SI), RV
	MUL64(RV, YA, YAS, RT1, RT2)
	VPADDQ  YK2, RV, RV
	VPXOR   YX, RV, RV
	MIX64(RV, RT1, RT2, RT3)
	VMOVDQU RV, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $4, CX
	JNZ     fixaloop
	VZEROUPPER
	RET

// func hash2ColsAVX2(dst, a, b *uint64, n uint64, x uint64)
// dst[i] = mix64(mix64(x ^ (a[i]*golden + 1)) ^ (b[i]*mixA + 2))
TEXT ·hash2ColsAVX2(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ n+24(FP), CX
	LOADGOLDEN
	LOADMIXCONSTS
	BCASTQ($1, YK1)
	BCASTQ($2, YK2)
	BCASTQ(x+32(FP), YX)

colsloop:
	VMOVDQU (SI), RV
	VMOVDQU (DX), RW
	MUL64(RV, YG, YGS, RT1, RT2)
	VPADDQ  YK1, RV, RV
	VPXOR   YX, RV, RV
	MIX64(RV, RT1, RT2, RT3)
	MUL64(RW, YA, YAS, RT1, RT2)
	VPADDQ  YK2, RW, RW
	VPXOR   RW, RV, RV
	MIX64(RV, RT1, RT2, RT3)
	VMOVDQU RV, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DX
	ADDQ    $32, DI
	SUBQ    $4, CX
	JNZ     colsloop
	VZEROUPPER
	RET
