package kernels_test

import (
	"encoding/binary"
	"testing"

	"repro/internal/hash"
	"repro/internal/kernels"
)

// xorshift-style deterministic generator for test columns; independent of
// the hash family under test.
type testRNG uint64

func (r *testRNG) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = testRNG(x)
	return x
}

// TestKernelConstantsMatchHash pins every kernel to the scalar reference
// in internal/hash, for every length from 0 through a couple of vector
// blocks — the odd lengths exercise the asm tail handoff.
func TestKernelConstantsMatchHash(t *testing.T) {
	rng := testRNG(0x9E3779B97F4A7C15)
	seeds := []hash.Seed{0, 1, hash.Seed(rng.next()), hash.Seed(rng.next())}
	for _, seed := range seeds {
		for n := 0; n <= 67; n++ {
			a := make([]uint64, n)
			b := make([]uint64, n)
			for i := range a {
				a[i] = rng.next()
				b[i] = rng.next()
			}
			dst := make([]uint64, n)

			hop := rng.next()
			kernels.HashPktHop(dst, a, uint64(seed), hop)
			for i := range dst {
				if want := seed.Hash2(a[i], hop); dst[i] != want {
					t.Fatalf("HashPktHop(seed=%#x, n=%d)[%d] = %#x, want %#x",
						uint64(seed), n, i, dst[i], want)
				}
			}

			fixed := rng.next()
			kernels.HashFixedA(dst, b, kernels.Hash2Prefix(uint64(seed), fixed))
			for i := range dst {
				if want := seed.Hash2(fixed, b[i]); dst[i] != want {
					t.Fatalf("HashFixedA(seed=%#x, n=%d)[%d] = %#x, want %#x",
						uint64(seed), n, i, dst[i], want)
				}
			}

			kernels.Hash2Cols(dst, a, b, uint64(seed))
			for i := range dst {
				if want := seed.Hash2(a[i], b[i]); dst[i] != want {
					t.Fatalf("Hash2Cols(seed=%#x, n=%d)[%d] = %#x, want %#x",
						uint64(seed), n, i, dst[i], want)
				}
			}
		}
	}
}

// TestKernelLengthMismatchPanics pins the column-length contract.
func TestKernelLengthMismatchPanics(t *testing.T) {
	cases := []struct {
		name string
		call func()
	}{
		{"HashPktHop", func() { kernels.HashPktHop(make([]uint64, 2), make([]uint64, 3), 1, 2) }},
		{"HashFixedA", func() { kernels.HashFixedA(make([]uint64, 2), make([]uint64, 3), 1) }},
		{"Hash2Cols/a", func() { kernels.Hash2Cols(make([]uint64, 2), make([]uint64, 3), make([]uint64, 2), 1) }},
		{"Hash2Cols/b", func() { kernels.Hash2Cols(make([]uint64, 2), make([]uint64, 2), make([]uint64, 3), 1) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: length mismatch did not panic", tc.name)
				}
			}()
			tc.call()
		}()
	}
}

// FuzzHashKernels differentially fuzzes the column kernels (whichever
// body this build selected) against the scalar hash reference.
func FuzzHashKernels(f *testing.F) {
	f.Add(uint64(0), uint64(1), []byte{})
	f.Add(uint64(0xF16), uint64(5), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(^uint64(0), ^uint64(0), make([]byte, 8*9))
	f.Fuzz(func(t *testing.T, seed, hop uint64, raw []byte) {
		n := len(raw) / 8
		if n > 1024 {
			n = 1024
		}
		a := make([]uint64, n)
		b := make([]uint64, n)
		for i := range a {
			a[i] = binary.LittleEndian.Uint64(raw[8*i:])
			b[i] = a[i]*0x9E37 + seed ^ hop
		}
		dst := make([]uint64, n)
		s := hash.Seed(seed)

		kernels.HashPktHop(dst, a, seed, hop)
		for i := range dst {
			if want := s.Hash2(a[i], hop); dst[i] != want {
				t.Fatalf("HashPktHop[%d] = %#x, want %#x", i, dst[i], want)
			}
		}
		kernels.HashFixedA(dst, b, kernels.Hash2Prefix(seed, hop))
		for i := range dst {
			if want := s.Hash2(hop, b[i]); dst[i] != want {
				t.Fatalf("HashFixedA[%d] = %#x, want %#x", i, dst[i], want)
			}
		}
		kernels.Hash2Cols(dst, a, b, seed)
		for i := range dst {
			if want := s.Hash2(a[i], b[i]); dst[i] != want {
				t.Fatalf("Hash2Cols[%d] = %#x, want %#x", i, dst[i], want)
			}
		}
	})
}
