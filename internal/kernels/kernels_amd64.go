//go:build amd64 && amd64.v3 && !purego

package kernels

// Accelerated reports whether this build uses the vectorized kernel
// bodies (true here: GOAMD64=v3 guarantees AVX2 at compile time, so the
// four-lane asm bodies run without any CPUID dispatch).
const Accelerated = true

//go:noescape
func hashPktHopAVX2(dst, pkt *uint64, n uint64, x, hb uint64)

//go:noescape
func hashFixedAAVX2(dst, b *uint64, n uint64, h1 uint64)

//go:noescape
func hash2ColsAVX2(dst, a, b *uint64, n uint64, x uint64)

func hashPktHop(dst, pkt []uint64, x, hb uint64) {
	n := len(dst) &^ (blockLanes - 1)
	if n > 0 {
		hashPktHopAVX2(&dst[0], &pkt[0], uint64(n), x, hb)
	}
	hashPktHopScalar(dst[n:], pkt[n:], x, hb)
}

func hashFixedA(dst, b []uint64, h1 uint64) {
	n := len(dst) &^ (blockLanes - 1)
	if n > 0 {
		hashFixedAAVX2(&dst[0], &b[0], uint64(n), h1)
	}
	hashFixedAScalar(dst[n:], b[n:], h1)
}

func hash2Cols(dst, a, b []uint64, x uint64) {
	n := len(dst) &^ (blockLanes - 1)
	if n > 0 {
		hash2ColsAVX2(&dst[0], &a[0], &b[0], uint64(n), x)
	}
	hash2ColsScalar(dst[n:], a[n:], b[n:], x)
}
