// Package telemetry implements the per-packet marking baselines the paper
// compares PINT against in the path-tracing evaluation (§6.3):
//
//   - PPM, Savage et al.'s probabilistic packet marking [65]: each mark is
//     an 8-bit fragment of a switch identifier plus distance/offset fields,
//     16 bits total on the packet,
//   - AMS2, Song and Perrig's Advanced Marking Scheme II [70]: each mark
//     is an 11-bit hash of the switch ID under one of m hash functions
//     plus a 5-bit distance, 16 bits total; m=6 trades more packets for a
//     lower false-positive probability than m=5.
//
// Both are implemented with the Reservoir-Sampling improvement of Sattari
// [63] the paper adopts: marking switches are selected uniformly via the
// shared reservoir process, so hop attribution is exact and the packet
// counts measured here are the *improved* baselines' (the originals need
// strictly more).
package telemetry

import (
	"fmt"

	"repro/internal/hash"
)

// PPMFragments is Savage et al.'s fragment count: a 32-bit identifier is
// sent as 8 fragments of 4 bits (with 4 bits of error detection each, 8
// bits of payload per mark in the compressed edge encoding).
const PPMFragments = 8

// PPMBitsPerPacket is the scheme's packet overhead (the overloaded IP ID
// field: 8-bit fragment + 5-bit distance + 3-bit offset).
const PPMBitsPerPacket = 16

// PPM simulates path reconstruction under fragment marking: the path is
// decoded once every (hop, fragment) pair has been received.
type PPM struct {
	g    hash.Global
	k    int
	got  [][]bool
	vals [][]uint64
	need int
	obs  int
}

// NewPPM creates a PPM reconstruction for a k-hop path.
func NewPPM(g hash.Global, k int) (*PPM, error) {
	if k < 1 || k > 64 {
		return nil, fmt.Errorf("telemetry: path length %d out of [1,64]", k)
	}
	p := &PPM{g: g, k: k, need: k * PPMFragments}
	p.got = make([][]bool, k)
	p.vals = make([][]uint64, k)
	for i := range p.got {
		p.got[i] = make([]bool, PPMFragments)
		p.vals[i] = make([]uint64, PPMFragments)
	}
	return p, nil
}

// Mark computes what the network writes on a packet: the reservoir-chosen
// hop's fragment. values[i] is hop i+1's switch ID.
func (p *PPM) Mark(pktID uint64, values []uint64) (hop int, fragIdx int, frag uint64) {
	hop = p.g.ReservoirWinner(pktID, len(values))
	fragIdx = p.g.Fragment(pktID, PPMFragments)
	frag = values[hop-1] >> uint(4*fragIdx) & 0xF
	return hop, fragIdx, frag
}

// Observe consumes one marked packet; returns true when the path is fully
// reconstructed.
func (p *PPM) Observe(pktID uint64, values []uint64) bool {
	p.obs++
	hop, fragIdx, frag := p.Mark(pktID, values)
	if !p.got[hop-1][fragIdx] {
		p.got[hop-1][fragIdx] = true
		p.vals[hop-1][fragIdx] = frag
		p.need--
	}
	return p.need == 0
}

// Done reports completion.
func (p *PPM) Done() bool { return p.need == 0 }

// Observed returns packets consumed.
func (p *PPM) Observed() int { return p.obs }

// Path reassembles the switch IDs once Done.
func (p *PPM) Path() ([]uint64, error) {
	if !p.Done() {
		return nil, fmt.Errorf("telemetry: PPM missing %d fragments", p.need)
	}
	out := make([]uint64, p.k)
	for h := 0; h < p.k; h++ {
		var v uint64
		for f := 0; f < PPMFragments; f++ {
			v |= p.vals[h][f] << uint(4*f)
		}
		out[h] = v
	}
	return out, nil
}

// AMS2BitsPerPacket is the scheme's overhead: 11-bit hash + 5-bit distance.
const AMS2BitsPerPacket = 16

// AMS2HashBits is the width of each hash sample.
const AMS2HashBits = 11

// AMS2 simulates Advanced Marking Scheme II reconstruction: each hop must
// be observed under all m hash functions, after which its identity is the
// universe value matching all m samples. With m=5 multiple candidates
// (false positives) are more likely than with m=6.
type AMS2 struct {
	g        hash.Global
	m        int
	k        int
	universe []uint64
	insts    []hash.Global
	got      [][]bool
	vals     [][]uint64
	need     int
	obs      int
}

// NewAMS2 creates an AMS2 reconstruction with m hash functions for a
// k-hop path over the given switch-ID universe.
func NewAMS2(g hash.Global, m, k int, universe []uint64) (*AMS2, error) {
	if m < 1 || m > 16 {
		return nil, fmt.Errorf("telemetry: AMS2 m=%d out of [1,16]", m)
	}
	if k < 1 || k > 64 {
		return nil, fmt.Errorf("telemetry: path length %d out of [1,64]", k)
	}
	if len(universe) == 0 {
		return nil, fmt.Errorf("telemetry: AMS2 requires a switch universe")
	}
	a := &AMS2{g: g, m: m, k: k, universe: universe, need: k * m}
	a.insts = make([]hash.Global, m)
	for i := range a.insts {
		a.insts[i] = g.Instance(i + 1000)
	}
	a.got = make([][]bool, k)
	a.vals = make([][]uint64, k)
	for i := range a.got {
		a.got[i] = make([]bool, m)
		a.vals[i] = make([]uint64, m)
	}
	return a, nil
}

// hashOf is AMS2's h_j(id): an 11-bit digest under hash function j. The
// scheme's hashes are packet-independent (the receiver matches them
// against precomputed tables), so no packet ID enters.
func (a *AMS2) hashOf(j int, id uint64) uint64 {
	return hash.Bits(a.insts[j].ValueDigest(id, 0, 64), AMS2HashBits)
}

// Observe consumes one marked packet: the reservoir-chosen hop writes
// h_j(ID) for a random j. Returns true when every (hop, j) sample exists.
func (a *AMS2) Observe(pktID uint64, values []uint64) bool {
	a.obs++
	hop := a.g.ReservoirWinner(pktID, len(values))
	j := a.g.Fragment(pktID^0xA52, a.m)
	if !a.got[hop-1][j] {
		a.got[hop-1][j] = true
		a.vals[hop-1][j] = a.hashOf(j, values[hop-1])
		a.need--
	}
	return a.need == 0
}

// Done reports whether every (hop, hash) sample has been collected.
func (a *AMS2) Done() bool { return a.need == 0 }

// Observed returns packets consumed.
func (a *AMS2) Observed() int { return a.obs }

// Path identifies each hop's switch. ambiguous counts hops with more than
// one universe value matching all m samples — AMS2's false-positive mode;
// for those hops the first match is returned.
func (a *AMS2) Path() (path []uint64, ambiguous int, err error) {
	if !a.Done() {
		return nil, 0, fmt.Errorf("telemetry: AMS2 missing %d samples", a.need)
	}
	path = make([]uint64, a.k)
	for h := 0; h < a.k; h++ {
		matches := 0
		for _, v := range a.universe {
			ok := true
			for j := 0; j < a.m; j++ {
				if a.hashOf(j, v) != a.vals[h][j] {
					ok = false
					break
				}
			}
			if ok {
				if matches == 0 {
					path[h] = v
				}
				matches++
			}
		}
		if matches == 0 {
			return nil, 0, fmt.Errorf("telemetry: AMS2 hop %d matches nothing", h+1)
		}
		if matches > 1 {
			ambiguous++
		}
	}
	return path, ambiguous, nil
}

// TracebackStats mirrors coding.Stats for the baseline schemes.
type TracebackStats struct {
	Mean, Median, P99 float64
}

// RunPPMTrials measures packets-to-decode for PPM over many trials.
func RunPPMTrials(values []uint64, trials int, seed uint64, maxPackets int) (TracebackStats, error) {
	counts := make([]int, 0, trials)
	rng := hash.NewRNG(seed)
	for t := 0; t < trials; t++ {
		g := hash.NewGlobal(hash.Seed(rng.Uint64()))
		p, err := NewPPM(g, len(values))
		if err != nil {
			return TracebackStats{}, err
		}
		sub := rng.Split()
		n := 0
		for !p.Done() && n < maxPackets {
			p.Observe(sub.Uint64(), values)
			n++
		}
		counts = append(counts, n)
	}
	return summarize(counts), nil
}

// RunAMS2Trials measures packets-to-decode for AMS2.
func RunAMS2Trials(values, universe []uint64, m, trials int, seed uint64, maxPackets int) (TracebackStats, error) {
	counts := make([]int, 0, trials)
	rng := hash.NewRNG(seed)
	for t := 0; t < trials; t++ {
		g := hash.NewGlobal(hash.Seed(rng.Uint64()))
		a, err := NewAMS2(g, m, len(values), universe)
		if err != nil {
			return TracebackStats{}, err
		}
		sub := rng.Split()
		n := 0
		for !a.Done() && n < maxPackets {
			a.Observe(sub.Uint64(), values)
			n++
		}
		counts = append(counts, n)
	}
	return summarize(counts), nil
}

func summarize(counts []int) TracebackStats {
	if len(counts) == 0 {
		return TracebackStats{}
	}
	sorted := append([]int(nil), counts...)
	for i := 1; i < len(sorted); i++ { // insertion sort; trial counts are small
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	sum := 0
	for _, c := range sorted {
		sum += c
	}
	p99 := sorted[(99*len(sorted)+99)/100-1]
	return TracebackStats{
		Mean:   float64(sum) / float64(len(sorted)),
		Median: float64(sorted[len(sorted)/2]),
		P99:    float64(p99),
	}
}
