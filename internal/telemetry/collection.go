package telemetry

import (
	"fmt"

	"repro/internal/netsim"
)

// This file models the telemetry *collection* path (§2, overhead problem
// 3, and §3.4's "we send fewer bytes from the sink to be analyzed"): the
// sink strips telemetry from packets and forwards reports to an analysis
// stack. Classic INT produces variable-size reports that grow with hop
// count, which complicates fixed-header collectors like Confluo [43];
// PINT reports are one fixed-width digest per packet.

// ReportKind distinguishes the two collection formats.
type ReportKind int

const (
	// ReportINT is a classic INT sink report: per-hop metadata records.
	ReportINT ReportKind = iota
	// ReportPINT is a PINT sink report: packet ID + fixed-width digest.
	ReportPINT
)

// Report is one sink-to-collector record.
type Report struct {
	Kind   ReportKind
	PktID  uint64
	FlowID uint64
	Hops   int
	// Bytes is the wire size of the report on the collection fabric.
	Bytes int
}

// reportHeaderBytes covers the collector framing: packet ID, flow ID and
// a length/hop field (fixed for PINT, present for INT too).
const reportHeaderBytes = 16

// INTReportBytes returns a classic INT report's size: framing plus 4B per
// value per hop (the INT spec's metadata encoding).
func INTReportBytes(hops, valuesPerHop int) int {
	return reportHeaderBytes + hops*valuesPerHop*netsim.INTValueBytes
}

// PINTReportBytes returns a PINT report's size: framing plus the global
// digest rounded up to bytes — independent of path length, which is what
// lets the collector use fixed-size ingestion.
func PINTReportBytes(digestBits int) int {
	return reportHeaderBytes + (digestBits+7)/8
}

// Sink aggregates collection-path statistics for one telemetry system.
type Sink struct {
	Kind         ReportKind
	ValuesPerHop int // INT only
	DigestBits   int // PINT only

	Reports     int
	TotalBytes  int64
	MinBytes    int
	MaxBytes    int
	uniformSize bool
}

// NewSink creates a collection-side sink model.
func NewSink(kind ReportKind, valuesPerHop, digestBits int) (*Sink, error) {
	switch kind {
	case ReportINT:
		if valuesPerHop < 1 {
			return nil, fmt.Errorf("telemetry: INT sink needs valuesPerHop >= 1")
		}
	case ReportPINT:
		if digestBits < 1 || digestBits > 64 {
			return nil, fmt.Errorf("telemetry: PINT sink digest bits %d out of [1,64]", digestBits)
		}
	default:
		return nil, fmt.Errorf("telemetry: unknown report kind %v", kind)
	}
	return &Sink{Kind: kind, ValuesPerHop: valuesPerHop, DigestBits: digestBits,
		MinBytes: 1 << 30, uniformSize: true}, nil
}

// Observe processes one data packet arriving at the sink and returns the
// report it would emit toward the collector.
func (s *Sink) Observe(pkt *netsim.Packet) Report {
	var bytes int
	switch s.Kind {
	case ReportINT:
		bytes = INTReportBytes(pkt.Hops, s.ValuesPerHop)
	case ReportPINT:
		bytes = PINTReportBytes(s.DigestBits)
	}
	s.Reports++
	s.TotalBytes += int64(bytes)
	if bytes < s.MinBytes {
		s.MinBytes = bytes
	}
	if bytes > s.MaxBytes {
		s.MaxBytes = bytes
	}
	if s.MinBytes != s.MaxBytes {
		s.uniformSize = false
	}
	return Report{Kind: s.Kind, PktID: pkt.ID, FlowID: pkt.FlowID,
		Hops: pkt.Hops, Bytes: bytes}
}

// FixedSize reports whether every report so far had the same size — the
// property fixed-header ingestion stacks (Confluo) require. PINT sinks
// are fixed-size by construction; INT sinks only when all paths have
// equal length.
func (s *Sink) FixedSize() bool { return s.Reports > 0 && s.uniformSize }

// MeanBytes returns the average report size.
func (s *Sink) MeanBytes() float64 {
	if s.Reports == 0 {
		return 0
	}
	return float64(s.TotalBytes) / float64(s.Reports)
}

// CollectionBandwidthBps returns the sink-to-collector bandwidth these
// reports consume given a packet rate.
func (s *Sink) CollectionBandwidthBps(packetsPerSec float64) float64 {
	return s.MeanBytes() * 8 * packetsPerSec
}
