package telemetry

import (
	"math"
	"testing"

	"repro/internal/hash"
)

func ids(k int) []uint64 {
	v := make([]uint64, k)
	for i := range v {
		v[i] = uint64(0x5A000000 + i*13)
	}
	return v
}

func universeWith(path []uint64, n int) []uint64 {
	u := append([]uint64(nil), path...)
	next := uint64(900000)
	for len(u) < n {
		u = append(u, next)
		next++
	}
	return u
}

func TestPPMValidation(t *testing.T) {
	g := hash.NewGlobal(1)
	if _, err := NewPPM(g, 0); err == nil {
		t.Fatal("k=0 must fail")
	}
	if _, err := NewPPM(g, 65); err == nil {
		t.Fatal("k=65 must fail")
	}
}

func TestPPMDecodesCorrectPath(t *testing.T) {
	g := hash.NewGlobal(2)
	values := ids(10)
	p, err := NewPPM(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Path(); err == nil {
		t.Fatal("Path before completion must error")
	}
	rng := hash.NewRNG(3)
	n := 0
	for !p.Done() {
		p.Observe(rng.Uint64(), values)
		n++
		if n > 100000 {
			t.Fatal("PPM never completed")
		}
	}
	got, err := p.Path()
	if err != nil {
		t.Fatal(err)
	}
	for i := range values {
		// PPM carries 8 fragments × 4 bits = the low 32 bits.
		if got[i] != values[i]&0xFFFFFFFF {
			t.Fatalf("hop %d: got %#x want %#x", i+1, got[i], values[i])
		}
	}
	if p.Observed() != n {
		t.Fatal("Observed mismatch")
	}
}

func TestPPMCouponCollectorScaling(t *testing.T) {
	// Expected packets ≈ 8k·H_{8k} under the reservoir improvement.
	values := ids(25)
	st, err := RunPPMTrials(values, 100, 7, 100000)
	if err != nil {
		t.Fatal(err)
	}
	k8 := 8.0 * 25
	want := k8 * (math.Log(k8) + 0.577)
	if st.Mean < want*0.8 || st.Mean > want*1.2 {
		t.Fatalf("PPM mean %v, want ≈%v", st.Mean, want)
	}
}

func TestAMS2Validation(t *testing.T) {
	g := hash.NewGlobal(1)
	u := ids(5)
	if _, err := NewAMS2(g, 0, 5, u); err == nil {
		t.Fatal("m=0 must fail")
	}
	if _, err := NewAMS2(g, 5, 0, u); err == nil {
		t.Fatal("k=0 must fail")
	}
	if _, err := NewAMS2(g, 5, 5, nil); err == nil {
		t.Fatal("empty universe must fail")
	}
}

func TestAMS2DecodesCorrectPath(t *testing.T) {
	g := hash.NewGlobal(4)
	values := ids(12)
	uni := universeWith(values, 157)
	a, err := NewAMS2(g, 5, 12, uni)
	if err != nil {
		t.Fatal(err)
	}
	rng := hash.NewRNG(5)
	n := 0
	for !a.Done() {
		a.Observe(rng.Uint64(), values)
		n++
		if n > 100000 {
			t.Fatal("AMS2 never completed")
		}
	}
	got, ambiguous, err := a.Path()
	if err != nil {
		t.Fatal(err)
	}
	if ambiguous != 0 {
		t.Fatalf("unexpected ambiguity with 55 hash bits over 157 IDs: %d", ambiguous)
	}
	for i := range values {
		if got[i] != values[i] {
			t.Fatalf("hop %d: got %#x want %#x", i+1, got[i], values[i])
		}
	}
}

func TestAMS2MoreHashesMorePackets(t *testing.T) {
	// m=6 collects 6 coupons per hop instead of 5: strictly more packets,
	// the trade-off §6.3 describes.
	values := ids(25)
	uni := universeWith(values, 157)
	s5, err := RunAMS2Trials(values, uni, 5, 100, 8, 100000)
	if err != nil {
		t.Fatal(err)
	}
	s6, err := RunAMS2Trials(values, uni, 6, 100, 9, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if s6.Mean <= s5.Mean {
		t.Fatalf("m=6 mean %v not above m=5 mean %v", s6.Mean, s5.Mean)
	}
}

func TestBaselinesNeedFarMoreThanCouponCollector(t *testing.T) {
	// Both baselines must sit well above plain k·H_k (they collect m or 8
	// coupons per hop) — this is the gap Fig 10 visualizes against PINT.
	values := ids(25)
	plain := 25 * (math.Log(25) + 0.577)
	ppm, _ := RunPPMTrials(values, 50, 10, 100000)
	ams, _ := RunAMS2Trials(values, universeWith(values, 157), 5, 50, 11, 100000)
	if ppm.Mean < 3*plain {
		t.Fatalf("PPM mean %v suspiciously low (plain CC %v)", ppm.Mean, plain)
	}
	if ams.Mean < 3*plain {
		t.Fatalf("AMS2 mean %v suspiciously low (plain CC %v)", ams.Mean, plain)
	}
}

func TestSummarizeOrderStats(t *testing.T) {
	s := summarize([]int{5, 1, 3, 2, 4})
	if s.Median != 3 {
		t.Fatalf("median %v, want 3", s.Median)
	}
	if s.Mean != 3 {
		t.Fatalf("mean %v, want 3", s.Mean)
	}
	if s.P99 != 5 {
		t.Fatalf("p99 %v, want 5", s.P99)
	}
	empty := summarize(nil)
	if empty.Mean != 0 {
		t.Fatal("empty summary must be zero")
	}
}
