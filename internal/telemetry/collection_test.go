package telemetry

import (
	"testing"

	"repro/internal/netsim"
)

func TestSinkValidation(t *testing.T) {
	if _, err := NewSink(ReportINT, 0, 0); err == nil {
		t.Fatal("INT sink without values must fail")
	}
	if _, err := NewSink(ReportPINT, 0, 0); err == nil {
		t.Fatal("PINT sink without digest bits must fail")
	}
	if _, err := NewSink(ReportPINT, 0, 65); err == nil {
		t.Fatal("65-bit digest must fail")
	}
	if _, err := NewSink(ReportKind(9), 1, 1); err == nil {
		t.Fatal("unknown kind must fail")
	}
}

func TestINTReportGrowsWithHops(t *testing.T) {
	s, err := NewSink(ReportINT, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2 := s.Observe(&netsim.Packet{ID: 1, Hops: 2})
	r5 := s.Observe(&netsim.Packet{ID: 2, Hops: 5})
	if r5.Bytes <= r2.Bytes {
		t.Fatal("INT report must grow with hop count")
	}
	// 5 hops × 3 values × 4B = 60B payload + 16B framing.
	if r5.Bytes != 76 {
		t.Fatalf("5-hop report %dB, want 76", r5.Bytes)
	}
	if s.FixedSize() {
		t.Fatal("variable path lengths must break fixed-size ingestion")
	}
}

func TestPINTReportFixedSize(t *testing.T) {
	s, err := NewSink(ReportPINT, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	for hops := 1; hops <= 30; hops++ {
		r := s.Observe(&netsim.Packet{ID: uint64(hops), Hops: hops})
		if r.Bytes != 18 {
			t.Fatalf("PINT report %dB at %d hops, want 18 regardless", r.Bytes, hops)
		}
	}
	if !s.FixedSize() {
		t.Fatal("PINT reports must be fixed-size (the Confluo-compatibility claim)")
	}
}

func TestCollectionBandwidthComparison(t *testing.T) {
	// §3.4: PINT sends fewer bytes from the sink. At 5 hops / 3 values,
	// INT reports are 76B vs PINT's 18B — a >4x collection saving.
	intSink, _ := NewSink(ReportINT, 3, 0)
	pintSink, _ := NewSink(ReportPINT, 0, 16)
	for i := 0; i < 1000; i++ {
		intSink.Observe(&netsim.Packet{ID: uint64(i), Hops: 5})
		pintSink.Observe(&netsim.Packet{ID: uint64(i), Hops: 5})
	}
	const pps = 1e6
	intBw := intSink.CollectionBandwidthBps(pps)
	pintBw := pintSink.CollectionBandwidthBps(pps)
	if pintBw*4 > intBw {
		t.Fatalf("PINT collection %v bps not >4x below INT's %v", pintBw, intBw)
	}
	if intSink.MeanBytes() != 76 || pintSink.MeanBytes() != 18 {
		t.Fatalf("mean sizes %v / %v", intSink.MeanBytes(), pintSink.MeanBytes())
	}
}

func TestReportBytesFormulas(t *testing.T) {
	if INTReportBytes(5, 1) != 16+20 {
		t.Fatal("INT formula broken")
	}
	if PINTReportBytes(1) != 17 {
		t.Fatal("sub-byte digests round up to one byte")
	}
	if PINTReportBytes(64) != 24 {
		t.Fatal("64-bit digest framing broken")
	}
}
