package scenario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// PathTraceSpec parameterizes an engine-driven path-tracing scenario:
// packets-to-decode for one path of the chosen topology, driven through
// the full production stack (Compile, EncodeHopBatch, wire round trip,
// sharded sink). cmd/pinttrace builds one of these from its flags; the
// registry's "pathtrace" entry is the default instance.
type PathTraceSpec struct {
	Topo      string // kentucky, uscarrier, fattree
	PathLen   int    // switches on the traced path
	Bits      int    // digest bits per hash instance
	Instances int    // independent hash instances
	D         int    // assumed path length (layering parameter)
	MaxPkts   int    // per-trial packet cap
	Baselines bool   // also run the PPM and AMS2 baselines
}

// buildGraph resolves the spec's topology.
func (p PathTraceSpec) buildGraph() (*topology.Graph, error) {
	switch p.Topo {
	case "kentucky":
		return topology.KentuckyDatalinkLike()
	case "uscarrier":
		return topology.USCarrierLike()
	case "fattree":
		return topology.FatTree(8)
	default:
		return nil, fmt.Errorf("scenario: unknown topology %q", p.Topo)
	}
}

// PathTrace builds the scenario: one trial per decode episode, seeds
// fanned out exactly like the serial experiments.EnginePathTrials, plus
// (optionally) one trial per traceback baseline. Scale.Trials sets the
// episode count, Scale.Seed the seed, Scale.Shards the sink worker count.
func PathTrace(spec PathTraceSpec) Scenario {
	return Scenario{
		Name:     "pathtrace",
		Figure:   "new",
		Desc:     "packets-to-decode for one path through the full engine→wire→sink stack",
		Topology: spec.Topo,
		Workload: "uniform packet IDs",
		Queries:  fmt.Sprintf("path %dx(b=%d), d=%d", spec.Instances, spec.Bits, spec.D),
		Stack:    stackFullSink,
		Plan: func(s experiments.Scale) ([]Trial, error) {
			g, err := spec.buildGraph()
			if err != nil {
				return nil, err
			}
			// A path visiting PathLen switches connects a pair at BFS
			// distance PathLen-1.
			pairs := g.SwitchPairsAtDistance(spec.PathLen-1, 1, s.Seed)
			if len(pairs) == 0 {
				return nil, fmt.Errorf("scenario: no %d-switch path in %s", spec.PathLen, g.Name)
			}
			nodePath := g.Path(pairs[0][0], pairs[0][1], s.Seed)
			var values []uint64
			for _, n := range nodePath {
				values = append(values, g.Nodes[n].SwitchID)
			}
			universe := g.SwitchIDUniverse()
			cfg, err := core.DefaultPathConfig(spec.Bits, spec.Instances, spec.D)
			if err != nil {
				return nil, err
			}
			maxPkts := spec.MaxPkts
			if maxPkts <= 0 {
				maxPkts = 2_000_000
			}
			var trials []Trial
			for _, ts := range experiments.EnginePathTrialSeeds(s.Seed, s.Trials) {
				ts := ts
				trials = append(trials, Trial{
					Name: fmt.Sprintf("episode-%d", uint64(ts.Flow)),
					Run: func() (any, error) {
						n, ok, err := experiments.EnginePathTrial(cfg, values, universe, ts, maxPkts, s.ShardCount())
						if err != nil {
							return nil, err
						}
						if !ok {
							n = -1 // undecoded within the cap
						}
						return n, nil
					},
				})
			}
			if spec.Baselines {
				trials = append(trials, Trial{Name: "baseline-ppm", Run: func() (any, error) {
					return telemetry.RunPPMTrials(values, s.Trials, s.Seed+1, maxPkts)
				}})
				for _, m := range []int{5, 6} {
					m := m
					trials = append(trials, Trial{
						Name: fmt.Sprintf("baseline-ams2-m%d", m),
						Run: func() (any, error) {
							return telemetry.RunAMS2Trials(values, universe, m, s.Trials, s.Seed+uint64(m), maxPkts)
						},
					})
				}
			}
			return trials, nil
		},
		Reduce: func(s experiments.Scale, outs []any) ([]experiments.Table, error) {
			var counts []int
			for _, out := range outs[:s.Trials] {
				if n := out.(int); n >= 0 {
					counts = append(counts, n)
				}
			}
			st := experiments.EnginePathStats(counts, s.Trials)
			t := experiments.Table{
				Title: fmt.Sprintf("Path trace (%s, %d hops): packets to decode",
					spec.Topo, spec.PathLen),
				Columns: []string{"scheme", "mean", "median", "p99", "decoded", "bits/pkt"},
			}
			cfg, _ := core.DefaultPathConfig(spec.Bits, spec.Instances, spec.D)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("PINT %dx(b=%d)", spec.Instances, spec.Bits),
				experiments.F(st.Mean), experiments.F(st.Median), experiments.F(st.P99),
				fmt.Sprintf("%d/%d", st.Decoded, st.Trials),
				fmt.Sprintf("%d", cfg.TotalBits()),
			})
			if spec.Baselines {
				names := []string{"PPM", "AMS2 (m=5)", "AMS2 (m=6)"}
				for i, out := range outs[s.Trials:] {
					bst := out.(telemetry.TracebackStats)
					t.Rows = append(t.Rows, []string{
						names[i],
						experiments.F(bst.Mean), experiments.F(bst.Median), experiments.F(bst.P99),
						"-",
						"16",
					})
				}
			}
			return []experiments.Table{t}, nil
		},
	}
}

func init() {
	// The registry's default instance mirrors the old Fig 10(c) sweet
	// spot: a 5-hop fat-tree path at the 2×(b=8) budget.
	Register(PathTrace(PathTraceSpec{
		Topo: "fattree", PathLen: 5, Bits: 8, Instances: 2, D: 5, Baselines: false,
	}))
}
