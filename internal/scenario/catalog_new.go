package scenario

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hash"
	"repro/internal/netsim"
	"repro/internal/pipeline"
	"repro/internal/sketch"
	"repro/internal/topology"
	"repro/internal/wire"
	"repro/internal/workload"
)

// This file registers the non-paper scenarios: workloads the paper never
// evaluated, running end to end through the production stack (engine
// batch encode → wire marshal/unmarshal → sharded sink). They are the
// proof that the registry scales by scenario count: each is a Plan/Reduce
// pair over the same backbone the figures use.

func init() {
	Register(routeChangeScenario())
	Register(ecmpImbalanceScenario())
	Register(multiTenantScenario())
}

// shipBlocks runs an encoded packet block switch→collector: wire round
// trip, then sink ingest. The returned buffers are reused across calls.
func shipBlocks(sink *pipeline.Sink, pkts []core.PacketDigest, wireBuf []byte, rx []core.PacketDigest) ([]byte, []core.PacketDigest, error) {
	rx, wireBuf, err := wire.Roundtrip(rx, wireBuf, pkts)
	if err != nil {
		return wireBuf, rx, err
	}
	sink.Ingest(rx)
	return wireBuf, rx, nil
}

// --- route-change detection ---

// routeChangeOut is one trial's detection record.
type routeChangeOut struct {
	decodePkts int   // packets to decode the original path
	fpBefore   int   // inconsistencies before the change (false positives)
	detectAt   []int // packets after the change until threshold i was hit (-1: never)
}

var routeThresholds = []int{1, 2, 4, 8}

func routeChangeScenario() Scenario {
	const (
		k       = 5
		block   = 8
		maxPkts = 100_000
	)
	return Scenario{
		Name:     "route-change",
		Figure:   "new",
		Desc:     "packets to detect a mid-flow reroute via decoder inconsistency bursts (§7)",
		Topology: "fat tree (K=8)",
		Workload: "uniform packet IDs, path flips mid-stream",
		Queries:  "path 2×(b=8), d=5",
		Stack:    stackFullSink,
		Plan: func(s experiments.Scale) ([]Trial, error) {
			g, err := topology.FatTree(8)
			if err != nil {
				return nil, err
			}
			base := hash.Seed(s.Seed).Derive(0x7C0A7E)
			var trials []Trial
			for t := 0; t < s.Trials; t++ {
				t := t
				master := base.Derive(uint64(t))
				trials = append(trials, Trial{
					Name: fmt.Sprintf("reroute-%d", t),
					Run: func() (any, error) {
						return runRouteChangeTrial(g, master, k, block, maxPkts, s.ShardCount())
					},
				})
			}
			return trials, nil
		},
		Reduce: func(s experiments.Scale, outs []any) ([]experiments.Table, error) {
			fpTotal := 0
			var decodeSum float64
			for _, out := range outs {
				o := out.(routeChangeOut)
				fpTotal += o.fpBefore
				decodeSum += float64(o.decodePkts)
			}
			t := experiments.Table{
				Title: fmt.Sprintf(
					"Route change: packets after reroute until detection, by threshold (original path decoded after %s pkts mean)",
					experiments.F(decodeSum/float64(len(outs)))),
				Columns: []string{"threshold", "mean", "median", "p99", "detected", "FP before change"},
			}
			for ti, thr := range routeThresholds {
				var lat []int
				for _, out := range outs {
					if d := out.(routeChangeOut).detectAt[ti]; d >= 0 {
						lat = append(lat, d)
					}
				}
				st := experiments.EnginePathStats(lat, len(outs))
				t.Rows = append(t.Rows, []string{
					fmt.Sprintf("%d", thr),
					experiments.F(st.Mean), experiments.F(st.Median), experiments.F(st.P99),
					fmt.Sprintf("%d/%d", st.Decoded, st.Trials),
					fmt.Sprintf("%d", fpTotal),
				})
			}
			return []experiments.Table{t}, nil
		},
	}
}

// runRouteChangeTrial decodes a path, flips the flow onto a different
// equal-cost path, and measures how many packets the decoder needs before
// its inconsistency counter crosses each detection threshold.
func runRouteChangeTrial(g *topology.Graph, master hash.Seed, k, block, maxPkts, shards int) (routeChangeOut, error) {
	out := routeChangeOut{detectAt: make([]int, len(routeThresholds))}
	for i := range out.detectAt {
		out.detectAt[i] = -1
	}
	pathA, pathB, err := equalCostPathPair(g, k, uint64(master))
	if err != nil {
		return out, err
	}
	cfg, err := core.DefaultPathConfig(8, 2, 5)
	if err != nil {
		return out, err
	}
	q, err := core.NewPathQuery("path", cfg, 1, master, g.SwitchIDUniverse())
	if err != nil {
		return out, err
	}
	eng, err := core.Compile([]core.Query{q}, cfg.TotalBits(), master.Derive(1))
	if err != nil {
		return out, err
	}
	sink, err := pipeline.NewSink(eng, pipeline.Config{Shards: shards, Base: master.Derive(2)})
	if err != nil {
		return out, err
	}
	defer sink.Close()
	const flow = core.FlowKey(1)
	stream := hash.NewRNG(uint64(master.Derive(3)))
	pkts := make([]core.PacketDigest, block)
	vals := make([]core.HopValues, block)
	var wireBuf []byte
	var rx []core.PacketDigest
	encodeAndShip := func(path []uint64) error {
		for j := range pkts {
			pkts[j] = core.PacketDigest{Flow: flow, PktID: stream.Uint64(), PathLen: k}
		}
		for hop := 1; hop <= k; hop++ {
			for j := range vals {
				vals[j].SwitchID = path[hop-1]
			}
			eng.EncodeHopBatch(hop, pkts, vals)
		}
		wireBuf, rx, err = shipBlocks(sink, pkts, wireBuf, rx)
		return err
	}

	// Phase 1: the flow runs on path A until decoded.
	n := 0
	for n < maxPkts {
		if err := encodeAndShip(pathA); err != nil {
			return out, err
		}
		n += block
		sink.Barrier()
		if dec := sink.Recording(flow).PathDecoder(q, flow); dec != nil && dec.Done() {
			break
		}
	}
	out.decodePkts = n
	out.fpBefore = sink.PathInconsistencies(q, flow)

	// Phase 2: the route flips to path B; count packets until the
	// inconsistency counter crosses each threshold.
	n = 0
	for n < maxPkts {
		if err := encodeAndShip(pathB); err != nil {
			return out, err
		}
		n += block
		sink.Barrier()
		inc := sink.PathInconsistencies(q, flow) - out.fpBefore
		done := true
		for i, thr := range routeThresholds {
			if out.detectAt[i] < 0 {
				if inc >= thr {
					out.detectAt[i] = n
				} else {
					done = false
				}
			}
		}
		if done {
			break
		}
	}
	return out, sink.Close()
}

// equalCostPathPair returns two distinct equal-length switch paths of k
// switches between one switch pair — the before/after routes of an ECMP
// reroute. It scans flow hashes until the path changes.
func equalCostPathPair(g *topology.Graph, k int, seed uint64) ([]uint64, []uint64, error) {
	pairs := g.SwitchPairsAtDistance(k-1, 4, seed)
	for _, pair := range pairs {
		a := g.SwitchPath(pair[0], pair[1], seed)
		if len(a) != k {
			continue
		}
		for h := uint64(1); h <= 64; h++ {
			b := g.SwitchPath(pair[0], pair[1], seed+h*0x9E37)
			if len(b) != k {
				continue
			}
			if !equalU64(a, b) {
				return a, b, nil
			}
		}
	}
	return nil, nil, fmt.Errorf("scenario: no equal-cost path pair of %d switches found", k)
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- ECMP imbalance localization ---

type ecmpOut struct {
	localized    bool
	decodedFlows int
	inflationEst float64
}

func ecmpImbalanceScenario() Scenario {
	const (
		k        = 5
		nFlows   = 12
		pktsFlow = 600
		hotBoost = 8
	)
	return Scenario{
		Name:     "ecmp-imbalance",
		Figure:   "new",
		Desc:     "localize a slow core switch from per-hop latency quantiles across ECMP-spread flows",
		Topology: "fat tree (K=8)",
		Workload: "synthetic ECMP flow fan-out, lognormal hop latencies",
		Queries:  "path 2×(b=4) + latency 8b in 16 bits",
		Stack:    stackFullSink,
		Plan: func(s experiments.Scale) ([]Trial, error) {
			g, err := topology.FatTree(8)
			if err != nil {
				return nil, err
			}
			base := hash.Seed(s.Seed).Derive(0xECB)
			var trials []Trial
			for t := 0; t < s.Trials; t++ {
				master := base.Derive(uint64(t))
				trials = append(trials, Trial{
					Name: fmt.Sprintf("localize-%d", t),
					Run: func() (any, error) {
						return runEcmpTrial(g, master, k, nFlows, pktsFlow, hotBoost, s.ShardCount())
					},
				})
			}
			return trials, nil
		},
		Reduce: func(s experiments.Scale, outs []any) ([]experiments.Table, error) {
			localized, decoded := 0, 0
			var inflSum float64
			var inflN int
			for _, o := range outs {
				e := o.(ecmpOut)
				if e.localized {
					localized++
				}
				decoded += e.decodedFlows
				if !math.IsNaN(e.inflationEst) {
					inflSum += e.inflationEst
					inflN++
				}
			}
			infl := math.NaN()
			if inflN > 0 {
				infl = inflSum / float64(inflN)
			}
			t := experiments.Table{
				Title:   fmt.Sprintf("ECMP imbalance: hot-switch localization over %d flows/trial (true inflation %dx)", nFlows, hotBoost),
				Columns: []string{"trials", "localized", "accuracy%", "decoded flows/trial", "est. inflation"},
				Rows: [][]string{{
					fmt.Sprintf("%d", len(outs)),
					fmt.Sprintf("%d", localized),
					experiments.F(float64(localized) / float64(len(outs)) * 100),
					experiments.F(float64(decoded) / float64(len(outs))),
					experiments.F(infl),
				}},
			}
			return []experiments.Table{t}, nil
		},
	}
}

// runEcmpTrial spreads flows across a fat tree's equal-cost paths, plants
// one slow core switch, drives every packet through the production stack,
// and localizes the hot switch from decoded paths + per-hop latency
// medians.
func runEcmpTrial(g *topology.Graph, master hash.Seed, k, nFlows, pktsFlow, hotBoost, shards int) (ecmpOut, error) {
	var out ecmpOut
	pairs := g.SwitchPairsAtDistance(k-1, 2, uint64(master))
	if len(pairs) == 0 {
		return out, fmt.Errorf("scenario: fat tree lacks %d-switch paths", k)
	}
	pair := pairs[0]
	paths := make([][]uint64, nFlows)
	for f := range paths {
		p := g.SwitchPath(pair[0], pair[1], uint64(master.Derive(uint64(100+f))))
		if len(p) != k {
			return out, fmt.Errorf("scenario: ECMP path of %d switches, want %d", len(p), k)
		}
		paths[f] = p
	}
	hot := paths[0][k/2] // a core-layer switch on flow 0's path

	cfg, err := core.DefaultPathConfig(4, 2, 5)
	if err != nil {
		return out, err
	}
	pathQ, err := core.NewPathQuery("path", cfg, 1, master, g.SwitchIDUniverse())
	if err != nil {
		return out, err
	}
	latQ, err := core.NewLatencyQuery("lat", 8, 0.04, 15.0/16, master)
	if err != nil {
		return out, err
	}
	eng, err := core.Compile([]core.Query{pathQ, latQ}, 16, master.Derive(1))
	if err != nil {
		return out, err
	}
	sink, err := pipeline.NewSink(eng, pipeline.Config{Shards: shards, Base: master.Derive(2)})
	if err != nil {
		return out, err
	}
	defer sink.Close()

	rng := hash.NewRNG(uint64(master.Derive(3)))
	pkts := make([]core.PacketDigest, pktsFlow)
	vals := make([]core.HopValues, pktsFlow)
	var wireBuf []byte
	var rx []core.PacketDigest
	for f := 0; f < nFlows; f++ {
		flow := core.FlowKey(uint64(f) + 1)
		for j := range pkts {
			pkts[j] = core.PacketDigest{Flow: flow, PktID: rng.Uint64(), PathLen: k}
		}
		for hop := 1; hop <= k; hop++ {
			sw := paths[f][hop-1]
			for j := range vals {
				lat := math.Exp(math.Log(8000) + 0.25*rng.NormFloat64())
				if sw == hot {
					lat *= float64(hotBoost)
				}
				vals[j] = core.HopValues{SwitchID: sw, LatencyNs: uint64(lat)}
			}
			eng.EncodeHopBatch(hop, pkts, vals)
		}
		if wireBuf, rx, err = shipBlocks(sink, pkts, wireBuf, rx); err != nil {
			return out, err
		}
	}
	if err := sink.Close(); err != nil {
		return out, err
	}

	// Localization: attribute each decoded (flow, hop) latency median to
	// its decoded switch ID, then rank switches by their mean estimate.
	scores := map[uint64][]float64{}
	for f := 0; f < nFlows; f++ {
		flow := core.FlowKey(uint64(f) + 1)
		ids, done := sink.Path(pathQ, flow)
		if !done {
			continue
		}
		out.decodedFlows++
		for hop := 1; hop <= k; hop++ {
			est, err := sink.LatencyQuantile(latQ, flow, hop, 0.5)
			if err != nil {
				continue
			}
			scores[ids[hop-1]] = append(scores[ids[hop-1]], est)
		}
	}
	var best uint64
	bestScore := math.Inf(-1)
	var others []float64
	swIDs := make([]uint64, 0, len(scores))
	for sw := range scores {
		swIDs = append(swIDs, sw)
	}
	sort.Slice(swIDs, func(i, j int) bool { return swIDs[i] < swIDs[j] })
	for _, sw := range swIDs {
		ests := scores[sw]
		var sum float64
		for _, e := range ests {
			sum += e
		}
		mean := sum / float64(len(ests))
		if mean > bestScore {
			bestScore, best = mean, sw
		}
		if sw != hot {
			others = append(others, mean)
		}
	}
	out.localized = best == hot && out.decodedFlows > 0
	if len(others) > 0 && len(scores[hot]) > 0 {
		out.inflationEst = bestScore / sketch.ExactQuantile(others, 0.5)
	} else {
		out.inflationEst = math.NaN()
	}
	return out, nil
}

// --- multi-tenant mixed workload ---

type tenantMetrics struct {
	flows   int
	slowP95 float64
	medErr  float64
	tailErr float64
}

func multiTenantScenario() Scenario {
	tenants := []experiments.Tenant{
		{Name: "hadoop", Dist: nil, Load: 0.25, MinFlows: 100},
		{Name: "websearch", Dist: nil, Load: 0.25, MinFlows: 100},
	}
	const k = 5
	return Scenario{
		Name:      "multi-tenant",
		Figure:    "new",
		Desc:      "per-tenant slowdown and latency-telemetry accuracy under mixed Hadoop+WebSearch load",
		Topology:  leafSpineTopo,
		Workload:  "hadoop + websearch tenants, merged Poisson arrivals",
		Transport: transportPINTd,
		Queries:   "latency 8b per tenant",
		Stack:     stackFullSink,
		Plan: func(s experiments.Scale) ([]Trial, error) {
			nTrials := s.Trials
			if nTrials > 4 {
				nTrials = 4 // each trial is a full loaded simulation
			}
			base := hash.Seed(s.Seed).Derive(0x377)
			var trials []Trial
			for t := 0; t < nTrials; t++ {
				master := base.Derive(uint64(t))
				trials = append(trials, Trial{
					Name: fmt.Sprintf("mixed-load-%d", t),
					Run: func() (any, error) {
						return runMultiTenantTrial(s, master, tenants, k)
					},
				})
			}
			return trials, nil
		},
		Reduce: func(s experiments.Scale, outs []any) ([]experiments.Table, error) {
			t := experiments.Table{
				Title:   "Multi-tenant: per-tenant flows, p95 slowdown, latency-estimate error (mean over trials)",
				Columns: []string{"tenant", "flows/trial", "p95 slowdown", "medLatErr%", "tailLatErr%"},
			}
			for ti, tn := range tenants {
				var m tenantMetrics
				for _, out := range outs {
					o := out.([]tenantMetrics)[ti]
					m.flows += o.flows
					m.slowP95 += o.slowP95
					m.medErr += o.medErr
					m.tailErr += o.tailErr
				}
				n := float64(len(outs))
				t.Rows = append(t.Rows, []string{
					tn.Name,
					experiments.F(float64(m.flows) / n),
					experiments.F(m.slowP95 / n),
					experiments.F(m.medErr / n),
					experiments.F(m.tailErr / n),
				})
			}
			return []experiments.Table{t}, nil
		},
	}
}

// runMultiTenantTrial shares one leaf-spine fabric between a Hadoop and a
// WebSearch tenant, harvests per-tenant per-hop latency streams from the
// simulation, and measures each tenant's transport fairness (p95
// slowdown) plus the accuracy of PINT latency telemetry estimated over
// its own traffic through the production stack.
func runMultiTenantTrial(s experiments.Scale, master hash.Seed, tenants []experiments.Tenant, k int) ([]tenantMetrics, error) {
	ts := s
	ts.Seed = uint64(master)
	spec := make([]experiments.Tenant, len(tenants))
	for i, tn := range tenants {
		spec[i] = tn
		switch tn.Name {
		case "hadoop":
			spec[i].Dist = workload.Hadoop()
		case "websearch":
			spec[i].Dist = workload.WebSearch()
		default:
			return nil, fmt.Errorf("scenario: unknown tenant %q", tn.Name)
		}
	}
	// Per-tenant per-hop latency streams; the tenant index travels in the
	// flow ID's high byte (see experiments.tenantFlows).
	streams := make([][][]float64, len(spec))
	for ti := range streams {
		streams[ti] = make([][]float64, k)
	}
	cfg := experiments.LoadRunConfig{Scale: ts, Kind: experiments.KindHPCCPINT, Tenants: spec}
	res, err := experiments.RunLoadWithHopHook(cfg, func(pkt *netsim.Packet, hop int, latNs int64) {
		ti := int(pkt.FlowID>>56) - 1
		if ti < 0 || ti >= len(streams) || hop < 1 || hop > k {
			return
		}
		streams[ti][hop-1] = append(streams[ti][hop-1], float64(latNs))
	})
	if err != nil {
		return nil, err
	}

	out := make([]tenantMetrics, len(spec))
	_, slowByTenant := res.SlowdownsByTenant(len(spec))
	for ti := range spec {
		out[ti].flows = len(slowByTenant[ti])
		out[ti].slowP95 = sketch.ExactQuantile(slowByTenant[ti], 0.95)
		med, tail, err := estimateHopQuantileErr(streams[ti], master.Derive(uint64(0x100+ti)), s.ShardCount())
		if err != nil {
			return nil, err
		}
		out[ti].medErr, out[ti].tailErr = med, tail
	}
	return out, nil
}

// estimateHopQuantileErr drives one tenant's hop-latency streams through
// the production telemetry stack — an 8-bit latency query, batch encode,
// wire round trip, sharded sink — and returns the mean relative error of
// the median and p99 estimates across hops.
func estimateHopQuantileErr(streams [][]float64, master hash.Seed, shards int) (float64, float64, error) {
	const z = 500
	k := len(streams)
	for h := range streams {
		if len(streams[h]) < 50 {
			return 0, 0, fmt.Errorf("scenario: hop %d collected only %d latencies", h+1, len(streams[h]))
		}
	}
	latQ, err := core.NewLatencyQuery("lat", 8, 0.04, 1, master)
	if err != nil {
		return 0, 0, err
	}
	eng, err := core.Compile([]core.Query{latQ}, 8, master.Derive(1))
	if err != nil {
		return 0, 0, err
	}
	sink, err := pipeline.NewSink(eng, pipeline.Config{Shards: shards, Base: master.Derive(2)})
	if err != nil {
		return 0, 0, err
	}
	defer sink.Close()
	rng := hash.NewRNG(uint64(master.Derive(3)))
	const flow = core.FlowKey(1)
	pkts := make([]core.PacketDigest, z)
	vals := make([]core.HopValues, z)
	for j := range pkts {
		pkts[j] = core.PacketDigest{Flow: flow, PktID: rng.Uint64(), PathLen: k}
	}
	for hop := 1; hop <= k; hop++ {
		st := streams[hop-1]
		for j := range vals {
			vals[j].LatencyNs = uint64(st[j%len(st)])
		}
		eng.EncodeHopBatch(hop, pkts, vals)
	}
	if _, _, err = shipBlocks(sink, pkts, nil, nil); err != nil {
		return 0, 0, err
	}
	if err := sink.Close(); err != nil {
		return 0, 0, err
	}
	var medSum, tailSum float64
	var n int
	for hop := 1; hop <= k; hop++ {
		truthMed := sketch.ExactQuantile(streams[hop-1], 0.5)
		truthTail := sketch.ExactQuantile(streams[hop-1], 0.99)
		estMed, err1 := sink.LatencyQuantile(latQ, flow, hop, 0.5)
		estTail, err2 := sink.LatencyQuantile(latQ, flow, hop, 0.99)
		if err1 != nil || err2 != nil || truthMed <= 0 || truthTail <= 0 {
			continue
		}
		medSum += math.Abs(estMed-truthMed) / truthMed * 100
		tailSum += math.Abs(estTail-truthTail) / truthTail * 100
		n++
	}
	if n == 0 {
		return math.NaN(), math.NaN(), nil
	}
	return medSum / float64(n), tailSum / float64(n), nil
}
