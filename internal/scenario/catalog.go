package scenario

import (
	"fmt"
	"math"

	"repro/internal/coding"
	"repro/internal/experiments"
	"repro/internal/workload"
)

// This file ports every figure and table of the paper's evaluation onto
// the registry. Each scenario decomposes along the figure's natural
// independent axis — (load, overhead) pairs, coding schemes, panels, path
// lengths, plan arms — chosen so every trial's randomness is a pure
// function of the Scale (the legacy harness already seeded these units
// independently). Reduction replays the legacy aggregation in the legacy
// order, so the registry output is bit-identical to the retired FigXX
// drivers at any scale and any parallelism.

func init() {
	for _, sc := range paperScenarios() {
		Register(sc)
	}
}

const (
	stackNone      = "transport sim (no recording path)"
	stackCoding    = "coding harness (no recording path)"
	stackFullSink  = "engine→wire→sharded sink"
	leafSpineTopo  = "leaf-spine (Scale.Pods)"
	transportHPCC  = "HPCC(INT) vs HPCC(PINT)"
	transportPINTd = "HPCC(PINT)"
)

func paperScenarios() []Scenario {
	return []Scenario{
		fig1Scenario(),
		fig5Scenario(),
		mediansScenario(),
		fig7aScenario(),
		fig7bcScenario("fig7b", "web search", workload.WebSearch),
		fig7bcScenario("fig7c", "Hadoop", workload.Hadoop),
		fig8Scenario(),
		fig9Scenario(),
		fig10Scenario("fig10a", experiments.TopoKentucky),
		fig10Scenario("fig10b", experiments.TopoUSCarrier),
		fig10Scenario("fig10c", experiments.TopoFatTree),
		fig11Scenario(),
		collectionScenario(),
	}
}

// --- Figs 1+2: overhead vs FCT/goodput ---

type overheadOut struct {
	fct   float64
	gp    float64
	flows int
}

func fig1Scenario() Scenario {
	loads := []float64{0.3, 0.7}
	overheads := []int{0, 28, 48, 68, 88, 108}
	return Scenario{
		Name:      "fig1",
		Figure:    "Fig 1+2",
		Desc:      "normalized FCT and long-flow goodput vs per-packet telemetry overhead",
		Topology:  leafSpineTopo,
		Workload:  "websearch",
		Transport: "Reno + fixed overhead",
		Queries:   "none (overhead study)",
		Stack:     stackNone,
		Plan: func(s experiments.Scale) ([]Trial, error) {
			var trials []Trial
			for _, load := range loads {
				for _, ov := range overheads {
					load, ov := load, ov
					trials = append(trials, Trial{
						Name: fmt.Sprintf("load=%v,ov=%d", load, ov),
						Run: func() (any, error) {
							res, err := experiments.RunLoad(experiments.LoadRunConfig{
								Scale: s, Dist: workload.WebSearch(), Load: load,
								Kind: experiments.KindReno, Overhead: ov, MinFlows: 50})
							if err != nil {
								return nil, err
							}
							longThr := int64(workload.WebSearch().Scaled(s.SizeDivisor).Quantile(0.8))
							return overheadOut{
								fct:   res.AvgFCT(),
								gp:    res.AvgGoodputLong(longThr),
								flows: len(res.Collector.Completed()),
							}, nil
						},
					})
				}
			}
			return trials, nil
		},
		Reduce: func(s experiments.Scale, outs []any) ([]experiments.Table, error) {
			var pts []experiments.OverheadPoint
			i := 0
			for _, load := range loads {
				var baseFCT, baseGP float64
				for _, ov := range overheads {
					o := outs[i].(overheadOut)
					i++
					if ov == 0 {
						baseFCT, baseGP = o.fct, o.gp
					}
					pts = append(pts, experiments.OverheadPoint{
						OverheadBytes:  ov,
						Load:           load,
						NormFCT:        o.fct / baseFCT,
						NormGoodput:    o.gp / baseGP,
						CompletedFlows: o.flows,
					})
				}
			}
			return []experiments.Table{experiments.Fig01_02Table(pts)}, nil
		},
	}
}

// --- Fig 5: coding scheme progress ---

func fig5Scenario() Scenario {
	return Scenario{
		Name:     "fig5",
		Figure:   "Fig 5",
		Desc:     "Baseline vs XOR vs Hybrid decode progress, k=d=25",
		Topology: "synthetic 25-hop path",
		Workload: "uniform packet IDs",
		Queries:  "static message coding",
		Stack:    stackCoding,
		// The three schemes share one RNG stream in the legacy harness,
		// so the figure is a single trial; parallelism comes from the
		// scenarios running beside it.
		Plan: func(s experiments.Scale) ([]Trial, error) {
			return []Trial{{Name: "all-schemes", Run: func() (any, error) {
				return experiments.Fig05(s)
			}}}, nil
		},
		Reduce: func(s experiments.Scale, outs []any) ([]experiments.Table, error) {
			return []experiments.Table{experiments.Fig05Table(outs[0].([]experiments.CodingCurve))}, nil
		},
	}
}

// --- §4.2 medians table ---

func mediansScenario() Scenario {
	schemes := experiments.CodingMedianSchemes()
	return Scenario{
		Name:     "medians",
		Figure:   "§4.2 table",
		Desc:     "packets-to-decode order statistics per coding scheme (incl. LNC)",
		Topology: "synthetic 25-hop path",
		Workload: "uniform packet IDs",
		Queries:  "static message coding",
		Stack:    stackCoding,
		Plan: func(s experiments.Scale) ([]Trial, error) {
			var trials []Trial
			for _, scheme := range schemes {
				scheme := scheme
				trials = append(trials, Trial{Name: scheme, Run: func() (any, error) {
					return experiments.CodingMedianStats(s, scheme)
				}})
			}
			return trials, nil
		},
		Reduce: func(s experiments.Scale, outs []any) ([]experiments.Table, error) {
			stats := make([]coding.Stats, len(outs))
			for i := range outs {
				stats[i] = outs[i].(coding.Stats)
			}
			return []experiments.Table{experiments.CodingMediansTable(schemes, stats)}, nil
		},
	}
}

// --- Fig 7a: goodput gain ---

func fig7aScenario() Scenario {
	loads := []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7}
	kinds := []experiments.TransportKind{experiments.KindHPCCINT, experiments.KindHPCCPINT}
	return Scenario{
		Name:      "fig7a",
		Figure:    "Fig 7(a)",
		Desc:      "long-flow goodput gain of HPCC(PINT) over HPCC(INT) vs load",
		Topology:  leafSpineTopo,
		Workload:  "websearch",
		Transport: transportHPCC,
		Queries:   "utilization (8-bit digest)",
		Stack:     stackNone,
		Plan: func(s experiments.Scale) ([]Trial, error) {
			longThr := int64(workload.WebSearch().Scaled(s.SizeDivisor).Quantile(0.8))
			var trials []Trial
			for _, load := range loads {
				for _, kind := range kinds {
					load, kind := load, kind
					trials = append(trials, Trial{
						Name: fmt.Sprintf("load=%v,kind=%d", load, kind),
						Run: func() (any, error) {
							res, err := experiments.RunLoad(experiments.LoadRunConfig{
								Scale: s, Dist: workload.WebSearch(), Load: load,
								Kind: kind, MinFlows: 50})
							if err != nil {
								return nil, err
							}
							return res.AvgGoodputLong(longThr), nil
						},
					})
				}
			}
			return trials, nil
		},
		Reduce: func(s experiments.Scale, outs []any) ([]experiments.Table, error) {
			var pts []experiments.GainPoint
			for i, load := range loads {
				gi := outs[2*i].(float64)
				gp := outs[2*i+1].(float64)
				pts = append(pts, experiments.GainPoint{
					Load: load, GoodputINT: gi, GoodputPINT: gp,
					GainPercent: (gp - gi) / gi * 100,
				})
			}
			return []experiments.Table{experiments.Fig07aTable(pts)}, nil
		},
	}
}

// --- Figs 7b/7c: slowdown by flow size ---

func fig7bcScenario(name, wlName string, mkDist func() *workload.Dist) Scenario {
	figure := "Fig 7(b)"
	if name == "fig7c" {
		figure = "Fig 7(c)"
	}
	kinds := []struct {
		name string
		k    experiments.TransportKind
	}{{"HPCC(INT)", experiments.KindHPCCINT}, {"HPCC(PINT)", experiments.KindHPCCPINT}}
	return Scenario{
		Name:      name,
		Figure:    figure,
		Desc:      fmt.Sprintf("p95 slowdown by flow size at 50%% load, %s workload", wlName),
		Topology:  leafSpineTopo,
		Workload:  wlName,
		Transport: transportHPCC,
		Queries:   "utilization (8-bit digest)",
		Stack:     stackNone,
		Plan: func(s experiments.Scale) ([]Trial, error) {
			var trials []Trial
			for _, kind := range kinds {
				kind := kind
				trials = append(trials, Trial{Name: kind.name, Run: func() (any, error) {
					res, err := experiments.RunLoad(experiments.LoadRunConfig{
						Scale: s, Dist: mkDist(), Load: 0.5, Kind: kind.k, MinFlows: 200})
					if err != nil {
						return nil, err
					}
					edges := experiments.DecileEdges(mkDist(), s.SizeDivisor)
					sizes, slow := res.Slowdowns()
					return experiments.SlowdownSeries{
						Name:     kind.name,
						BinEdges: edges,
						P95:      experiments.PercentileSlowdownByBin(sizes, slow, edges, 0.95),
					}, nil
				}})
			}
			return trials, nil
		},
		Reduce: func(s experiments.Scale, outs []any) ([]experiments.Table, error) {
			series := make([]experiments.SlowdownSeries, len(outs))
			for i := range outs {
				series[i] = outs[i].(experiments.SlowdownSeries)
			}
			title := fmt.Sprintf("%s: p95 slowdown, %s, 50%% load",
				map[string]string{"fig7b": "Fig 7b", "fig7c": "Fig 7c"}[name], wlName)
			return []experiments.Table{experiments.SlowdownTable(title, series)}, nil
		},
	}
}

// --- Fig 8: feedback fraction ---

func fig8Scenario() Scenario {
	wls := []struct {
		name string
		mk   func() *workload.Dist
	}{{"web search", workload.WebSearch}, {"hadoop", workload.Hadoop}}
	ps := []float64{1, 1.0 / 16, 1.0 / 256}
	return Scenario{
		Name:      "fig8",
		Figure:    "Fig 8",
		Desc:      "p95 slowdown with the congestion query on a p-fraction of packets",
		Topology:  leafSpineTopo,
		Workload:  "websearch + hadoop",
		Transport: transportPINTd,
		Queries:   "utilization at p ∈ {1, 1/16, 1/256}",
		Stack:     stackNone,
		Plan: func(s experiments.Scale) ([]Trial, error) {
			var trials []Trial
			for _, wl := range wls {
				for _, p := range ps {
					wl, p := wl, p
					trials = append(trials, Trial{
						Name: fmt.Sprintf("%s,p=1/%d", wl.name, int(math.Round(1/p))),
						Run: func() (any, error) {
							res, err := experiments.RunLoad(experiments.LoadRunConfig{
								Scale: s, Dist: wl.mk(), Load: 0.5,
								Kind: experiments.KindHPCCPINT, PintP: p, MinFlows: 200})
							if err != nil {
								return nil, err
							}
							edges := experiments.DecileEdges(wl.mk(), s.SizeDivisor)
							sizes, slow := res.Slowdowns()
							return experiments.SlowdownSeries{
								Name:     fmt.Sprintf("p=1/%d", int(math.Round(1/p))),
								BinEdges: edges,
								P95:      experiments.PercentileSlowdownByBin(sizes, slow, edges, 0.95),
							}, nil
						},
					})
				}
			}
			return trials, nil
		},
		Reduce: func(s experiments.Scale, outs []any) ([]experiments.Table, error) {
			var tables []experiments.Table
			for wi, wl := range wls {
				series := make([]experiments.SlowdownSeries, len(ps))
				for pi := range ps {
					series[pi] = outs[wi*len(ps)+pi].(experiments.SlowdownSeries)
				}
				tables = append(tables, experiments.SlowdownTable(
					fmt.Sprintf("Fig 8: p95 slowdown vs feedback fraction, %s", wl.name), series))
			}
			return tables, nil
		},
	}
}

// --- Fig 9: latency quantile error ---

func fig9Scenario() Scenario {
	panels := []experiments.Fig09Panel{
		{Workload: "websearch", Quantile: 0.99},
		{Workload: "hadoop", Quantile: 0.99},
		{Workload: "hadoop", Quantile: 0.5},
		{Workload: "websearch", Quantile: 0.99, BySketch: true},
		{Workload: "hadoop", Quantile: 0.99, BySketch: true},
		{Workload: "hadoop", Quantile: 0.5, BySketch: true},
	}
	return Scenario{
		Name:      "fig9",
		Figure:    "Fig 9",
		Desc:      "per-hop latency quantile relative error vs sample and sketch size",
		Topology:  leafSpineTopo,
		Workload:  "websearch + hadoop",
		Transport: transportPINTd,
		Queries:   "latency (b=4/8, raw + KLL-sketched)",
		Stack:     stackFullSink,
		Plan: func(s experiments.Scale) ([]Trial, error) {
			var trials []Trial
			for _, p := range panels {
				p := p
				trials = append(trials, Trial{
					Name: experiments.Fig09PanelTitle(p),
					Run: func() (any, error) {
						return experiments.Fig09(s, p)
					},
				})
			}
			return trials, nil
		},
		Reduce: func(s experiments.Scale, outs []any) ([]experiments.Table, error) {
			var tables []experiments.Table
			for i, p := range panels {
				tables = append(tables, experiments.Fig09Table(p, outs[i].([]experiments.LatencySeries)))
			}
			return tables, nil
		},
	}
}

// --- Fig 10: path tracing ---

func fig10Scenario(name string, topo experiments.Fig10Topology) Scenario {
	figure := map[string]string{
		"fig10a": "Fig 10(a)/(d)", "fig10b": "Fig 10(b)/(e)", "fig10c": "Fig 10(c)/(f)",
	}[name]
	return Scenario{
		Name:     name,
		Figure:   figure,
		Desc:     fmt.Sprintf("packets to decode a path vs length on %s, PINT vs PPM/AMS2", topo),
		Topology: string(topo),
		Workload: "uniform packet IDs",
		Queries:  "path (2×b=8, b=4, b=1) vs PPM/AMS2 baselines",
		Stack:    stackCoding,
		Plan: func(s experiments.Scale) ([]Trial, error) {
			// The topology is built once here; per-length trials share it
			// (graph queries are pure reads).
			lengths, run, err := experiments.Fig10Planner(topo)
			if err != nil {
				return nil, err
			}
			var trials []Trial
			for _, l := range lengths {
				l := l
				trials = append(trials, Trial{
					Name: fmt.Sprintf("len=%d", l),
					Run: func() (any, error) {
						pts, err := run(s, l)
						if err != nil {
							return nil, err
						}
						return pts, nil
					},
				})
			}
			return trials, nil
		},
		Reduce: func(s experiments.Scale, outs []any) ([]experiments.Table, error) {
			var pts []experiments.PathPoint
			for _, out := range outs {
				pts = append(pts, out.([]experiments.PathPoint)...)
			}
			return []experiments.Table{experiments.Fig10Table(topo, pts)}, nil
		},
	}
}

// --- Fig 11: concurrent queries ---

func fig11Scenario() Scenario {
	arms := []struct {
		name string
		arm  experiments.Fig11Arm
	}{
		{"combined", experiments.Fig11Combined},
		{"solo-path", experiments.Fig11SoloPath},
		{"solo-latency", experiments.Fig11SoloLat},
	}
	return Scenario{
		Name:      "fig11",
		Figure:    "Fig 11",
		Desc:      "three concurrent queries in a 16-bit budget vs solo baselines",
		Topology:  leafSpineTopo,
		Workload:  "hadoop",
		Transport: transportPINTd,
		Queries:   "path 2×(b=4) + latency 8b + HPCC 8b",
		Stack:     stackFullSink,
		Plan: func(s experiments.Scale) ([]Trial, error) {
			var trials []Trial
			for _, a := range arms {
				a := a
				trials = append(trials, Trial{Name: a.name, Run: func() (any, error) {
					return experiments.Fig11RunArm(s, a.arm)
				}})
			}
			return trials, nil
		},
		Reduce: func(s experiments.Scale, outs []any) ([]experiments.Table, error) {
			rows := experiments.Fig11Assemble(
				outs[0].(*experiments.CombinedMetrics),
				outs[1].(*experiments.CombinedMetrics),
				outs[2].(*experiments.CombinedMetrics))
			return []experiments.Table{experiments.Fig11Table(rows)}, nil
		},
	}
}

// --- §2 collection overhead ---

func collectionScenario() Scenario {
	systems := experiments.CollectionSystems()
	return Scenario{
		Name:      "collection",
		Figure:    "§2 problem 3",
		Desc:      "sink-to-collector report-stream bandwidth, INT vs PINT",
		Topology:  leafSpineTopo,
		Workload:  "hadoop",
		Transport: transportHPCC,
		Queries:   "report stream modeling",
		Stack:     stackNone,
		Plan: func(s experiments.Scale) ([]Trial, error) {
			var trials []Trial
			for _, system := range systems {
				system := system
				trials = append(trials, Trial{Name: system, Run: func() (any, error) {
					return experiments.CollectionOverheadFor(s, system)
				}})
			}
			return trials, nil
		},
		Reduce: func(s experiments.Scale, outs []any) ([]experiments.Table, error) {
			stats := make([]experiments.CollectionStats, len(outs))
			for i := range outs {
				stats[i] = outs[i].(experiments.CollectionStats)
			}
			return []experiments.Table{experiments.CollectionTable(stats)}, nil
		},
	}
}
