package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"repro/internal/collector"
	"repro/internal/experiments"
	"repro/internal/federation"
	"repro/internal/hash"
)

func init() {
	Register(federatedScaleScenario())
}

// federatedScaleOut is one trial's conformance record: the federated
// deployment (fleet of N daemons behind the partitioner and the pintgate
// frontend) against the single in-process sink, plus the degraded-mode
// probe. Every comparison field is a pure function of the testbench
// shape, so the scenario's output is golden-stable at any parallelism.
type federatedScaleOut struct {
	fleet        int
	shards       int
	packets      uint64
	bytesPerPkt  float64
	mergeIdent   bool // Recording.Merge fold == in-process answers
	gateIdent    bool // frontend /snapshot body == single-collector body
	statsOK      bool // frontend totals account for every packet
	partialOK    bool // dead member: partial header + named node + survivors merged
	survivorFlow int  // flows still answered with one member down
}

var (
	federatedFleetAxis = []int{1, 2, 4}
	federatedShardAxis = []int{1, 4}
)

func federatedScaleScenario() Scenario {
	const (
		nExporters = 3
		flowsPer   = 4
		frameBatch = 64
	)
	return Scenario{
		Name:     "federated-scale",
		Figure:   "new",
		Desc:     "hash-partitioned collector fleet + merging frontend answers bit-identically to one in-process sink, and degrades explicitly when a member dies",
		Topology: "fat tree (K=8) switch universe, loopback TCP fleet + HTTP gate",
		Workload: "3 exporters x 4 flows routed to consistent-hash homes across fleets {1,2,4}",
		Queries:  "path 2×(b=4) + latency 8b in 16 bits",
		Stack:    "engine→wire frames→TCP→collector fleet→sharded sinks→Recording.Merge / pintgate merge",
		Plan: func(s experiments.Scale) ([]Trial, error) {
			pktsPer := 50 * s.Trials
			if pktsPer > 500 {
				pktsPer = 500
			}
			seed := uint64(hash.Seed(s.Seed).Derive(0xFEDE7A))
			var trials []Trial
			for _, fleetN := range federatedFleetAxis {
				for _, shards := range federatedShardAxis {
					fleetN, shards := fleetN, shards
					trials = append(trials, Trial{
						Name: fmt.Sprintf("fleet-%d-shards-%d", fleetN, shards),
						Run: func() (any, error) {
							return runFederatedScaleTrial(seed, fleetN, shards, nExporters, flowsPer, pktsPer, frameBatch)
						},
					})
				}
			}
			return trials, nil
		},
		Reduce: func(s experiments.Scale, outs []any) ([]experiments.Table, error) {
			t := experiments.Table{
				Title: fmt.Sprintf(
					"Federated conformance: fleet TCP+gate vs in-process, %d exporters x %d flows",
					nExporters, flowsPer),
				Columns: []string{"fleet", "sink shards", "packets", "bytes/pkt",
					"merge identical", "gate identical", "stats exact", "partial on death", "survivor flows"},
			}
			yn := func(b bool) string {
				if b {
					return "yes"
				}
				return "NO"
			}
			for _, out := range outs {
				o := out.(federatedScaleOut)
				t.Rows = append(t.Rows, []string{
					fmt.Sprintf("%d", o.fleet),
					fmt.Sprintf("%d", o.shards),
					fmt.Sprintf("%d", o.packets),
					experiments.F(o.bytesPerPkt),
					yn(o.mergeIdent),
					yn(o.gateIdent),
					yn(o.statsOK),
					yn(o.partialOK),
					fmt.Sprintf("%d/%d", o.survivorFlow, nExporters*flowsPer),
				})
			}
			return []experiments.Table{t}, nil
		},
	}
}

// singleCollectorBody renders answers exactly as one daemon's /snapshot
// endpoint would (collector.WriteJSON's encoder shape) — the reference
// the frontend's merged body must match byte for byte.
func singleCollectorBody(answers []collector.FlowAnswers) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(map[string]any{"flows": answers}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// runFederatedScaleTrial runs one (fleet size, shard count) cell: the
// identical deployment through a loopback-TCP collector fleet (flows
// routed to consistent-hash homes, epoch-fenced sessions, queried through
// a real pintgate frontend on its own socket) and through the in-process
// sink, demanding byte-identical answers on both federated query paths —
// then kills one member and demands an explicit partial result. Any
// mismatch is a trial error: the registry fails loudly rather than
// tabulating a broken fleet.
func runFederatedScaleTrial(seed uint64, fleetN, shards, nExporters, flowsPer, pktsPer, frameBatch int) (federatedScaleOut, error) {
	out := federatedScaleOut{fleet: fleetN, shards: shards}
	tb, err := collector.NewTestbench(seed, 5)
	if err != nil {
		return out, err
	}
	epoch := seed ^ uint64(fleetN)<<8 ^ uint64(shards)
	fleet, err := federation.StartFleet(tb, fleetN, shards, epoch)
	if err != nil {
		return out, err
	}
	defer fleet.Shutdown(context.Background())

	sent, wireBytes, err := fleet.Stream(nExporters, flowsPer, pktsPer, frameBatch)
	if err != nil {
		return out, err
	}
	if err := fleet.WaitIngested(sent, 30*time.Second); err != nil {
		return out, err
	}
	out.packets = sent
	if sent > 0 {
		out.bytesPerPkt = float64(wireBytes) / float64(sent)
	}

	// Reference: the identical deployment into one in-process sink.
	local, err := tb.RunInProcess(shards, nExporters, flowsPer, pktsPer)
	if err != nil {
		return out, err
	}
	localJSON, err := json.Marshal(local.Answers)
	if err != nil {
		return out, err
	}

	// Path 1: fold member snapshots with core.Recording.Merge.
	fleetAnswers, err := fleet.MergedAnswers(nil)
	if err != nil {
		return out, err
	}
	fleetJSON, err := json.Marshal(fleetAnswers)
	if err != nil {
		return out, err
	}
	out.mergeIdent = bytes.Equal(fleetJSON, localJSON)
	if !out.mergeIdent {
		return out, fmt.Errorf("scenario: Recording.Merge fold diverges from in-process at fleet %d, shards %d", fleetN, shards)
	}

	// Path 2: the HTTP frontend on a real loopback socket.
	fe, err := federation.NewFrontend(federation.WithMembers(fleet.HTTPURLs()...))
	if err != nil {
		return out, err
	}
	gateLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return out, err
	}
	gateSrv := collector.HardenedHTTPServer(fe.Handler())
	go gateSrv.Serve(gateLn)
	defer gateSrv.Close()
	gateURL := "http://" + gateLn.Addr().String()

	body, partial, err := getBody(gateURL + "/snapshot")
	if err != nil {
		return out, err
	}
	if partial {
		return out, fmt.Errorf("scenario: healthy fleet answered partial")
	}
	wantBody, err := singleCollectorBody(local.Answers)
	if err != nil {
		return out, err
	}
	out.gateIdent = bytes.Equal(body, wantBody)
	if !out.gateIdent {
		return out, fmt.Errorf("scenario: gate /snapshot diverges from single-collector body at fleet %d, shards %d", fleetN, shards)
	}

	// The gate's totals account for exactly the streamed packets.
	statsBody, _, err := getBody(gateURL + "/stats")
	if err != nil {
		return out, err
	}
	var stats struct {
		Total struct {
			Server collector.Stats `json:"server"`
		} `json:"total"`
	}
	if err := json.Unmarshal(statsBody, &stats); err != nil {
		return out, err
	}
	out.statsOK = stats.Total.Server.Packets == sent
	if !out.statsOK {
		return out, fmt.Errorf("scenario: gate total %d packets, want %d", stats.Total.Server.Packets, sent)
	}

	// Degraded mode: kill the last member; the gate must answer partial,
	// name the dead node, and still merge every survivor-owned flow.
	// (With a fleet of one there is nothing to survive — skip.)
	if fleetN == 1 {
		out.partialOK = true
		out.survivorFlow = 0
		return out, nil
	}
	dead := fleetN - 1
	deadURL := fleet.HTTPURLs()[dead]
	if err := fleet.StopMember(context.Background(), dead); err != nil {
		return out, err
	}
	body, partial, err = getBody(gateURL + "/snapshot")
	if err != nil {
		return out, err
	}
	var degraded struct {
		Errors []federation.NodeError  `json:"errors"`
		Flows  []collector.FlowAnswers `json:"flows"`
	}
	if err := json.Unmarshal(body, &degraded); err != nil {
		return out, err
	}
	namesDead := len(degraded.Errors) == 1 && degraded.Errors[0].Node == deadURL
	wantSurvivors := 0
	for _, flow := range tb.Flows(nExporters, flowsPer) {
		if fleet.Partitioner().Home(flow) != dead {
			wantSurvivors++
		}
	}
	out.survivorFlow = len(degraded.Flows)
	out.partialOK = partial && namesDead && out.survivorFlow == wantSurvivors
	if !out.partialOK {
		return out, fmt.Errorf("scenario: degraded fleet %d: partial=%v namesDead=%v survivors=%d want %d",
			fleetN, partial, namesDead, out.survivorFlow, wantSurvivors)
	}
	return out, nil
}

// getBody GETs a URL and returns the body plus whether the response was
// marked partial.
func getBody(url string) ([]byte, bool, error) {
	client := &http.Client{Timeout: 15 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, false, fmt.Errorf("scenario: %s: %s", url, resp.Status)
	}
	return body, resp.Header.Get(federation.PartialHeader) != "", nil
}
