package scenario

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
)

var updateGolden = flag.Bool("update", false, "rewrite the scenario golden files")

func marshalResult(t *testing.T, res *Result) []byte {
	t.Helper()
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

// TestSerialVsParallelGolden is the registry's determinism contract:
// every registered scenario, at quick scale, produces byte-identical JSON
// under -parallel 1 and -parallel 8, and matches the committed golden
// file (refresh with `go test ./internal/scenario -run Golden -update`).
func TestSerialVsParallelGolden(t *testing.T) {
	serial, err := RunNames([]string{"all"}, Options{Scale: experiments.Quick(), Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunNames([]string{"all"}, Options{Scale: experiments.Quick(), Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		name := serial[i].Scenario
		sb := marshalResult(t, serial[i])
		pb := marshalResult(t, parallel[i])
		if !bytes.Equal(sb, pb) {
			t.Errorf("%s: serial and parallel runs differ:\nserial:   %s\nparallel: %s", name, sb, pb)
			continue
		}
		golden := filepath.Join("testdata", name+".golden.json")
		if *updateGolden {
			if err := os.WriteFile(golden, sb, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Errorf("%s: missing golden file (run with -update): %v", name, err)
			continue
		}
		if !bytes.Equal(sb, want) {
			t.Errorf("%s: output differs from %s\ngot:  %s\nwant: %s", name, golden, sb, want)
		}
	}
}

// TestShardsDoNotChangeAnswers runs the recording-stack scenarios with
// different sink shard counts and demands byte-identical JSON — the
// pipeline determinism property surfaced at the scenario level.
func TestShardsDoNotChangeAnswers(t *testing.T) {
	for _, name := range []string{"pathtrace", "route-change", "ecmp-imbalance"} {
		var ref []byte
		for _, shards := range []int{1, 3} {
			s := experiments.Quick()
			s.Shards = shards
			res, err := RunByName(name, Options{Scale: s, Parallel: 2})
			if err != nil {
				t.Fatalf("%s shards=%d: %v", name, shards, err)
			}
			b := marshalResult(t, res)
			if ref == nil {
				ref = b
			} else if !bytes.Equal(ref, b) {
				t.Fatalf("%s: shards=1 vs shards=%d outputs differ:\n%s\nvs\n%s", name, shards, ref, b)
			}
		}
	}
}
