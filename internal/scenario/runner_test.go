package scenario

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/experiments"
)

// syntheticScenario builds a scenario of n trials whose outputs encode
// their trial index, to pin runner ordering semantics without simulation
// cost.
func syntheticScenario(name string, n int, fail int) Scenario {
	return Scenario{
		Name:   name,
		Figure: "new",
		Desc:   "runner test scenario",
		Plan: func(s experiments.Scale) ([]Trial, error) {
			var trials []Trial
			for i := 0; i < n; i++ {
				i := i
				trials = append(trials, Trial{
					Name: fmt.Sprintf("t%d", i),
					Run: func() (any, error) {
						if i == fail {
							return nil, fmt.Errorf("boom at %d", i)
						}
						return i * i, nil
					},
				})
			}
			return trials, nil
		},
		Reduce: func(s experiments.Scale, outs []any) ([]experiments.Table, error) {
			t := experiments.Table{Title: "synthetic", Columns: []string{"i", "sq"}}
			for i, out := range outs {
				t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", i), fmt.Sprintf("%d", out.(int))})
			}
			return []experiments.Table{t}, nil
		},
	}
}

func TestRunnerOutputsIndexedByPlanOrder(t *testing.T) {
	sc := syntheticScenario("synth", 64, -1)
	for _, par := range []int{1, 3, 16} {
		res, err := Run(&sc, Options{Scale: experiments.Quick(), Parallel: par})
		if err != nil {
			t.Fatal(err)
		}
		if res.Trials != 64 {
			t.Fatalf("parallel=%d: %d trials", par, res.Trials)
		}
		for i, row := range res.Tables[0].Rows {
			if row[1] != fmt.Sprintf("%d", i*i) {
				t.Fatalf("parallel=%d: row %d out of order: %v", par, i, row)
			}
		}
	}
}

func TestRunnerDeterministicError(t *testing.T) {
	sc := syntheticScenario("synth-fail", 64, 17)
	for _, par := range []int{1, 8} {
		_, err := Run(&sc, Options{Scale: experiments.Quick(), Parallel: par})
		if err == nil || !strings.Contains(err.Error(), "t17") {
			t.Fatalf("parallel=%d: want trial t17 failure, got %v", par, err)
		}
	}
}

func TestRunnerValidatesScale(t *testing.T) {
	sc := syntheticScenario("synth-scale", 4, -1)
	bad := experiments.Quick()
	bad.Shards = -3
	if _, err := Run(&sc, Options{Scale: bad}); err == nil {
		t.Fatal("invalid Shards accepted")
	}
	bad = experiments.Quick()
	bad.Trials = 0
	if _, err := Run(&sc, Options{Scale: bad}); err == nil {
		t.Fatal("invalid Trials accepted")
	}
	if _, err := Run(&sc, Options{Scale: experiments.Quick(), Parallel: MaxParallel + 1}); err == nil {
		t.Fatal("oversized Parallel accepted")
	}
}

func TestRunManySharesThePool(t *testing.T) {
	var live, peak atomic.Int64
	mk := func(name string) Scenario {
		return Scenario{
			Name: name, Figure: "new",
			Plan: func(s experiments.Scale) ([]Trial, error) {
				var trials []Trial
				for i := 0; i < 8; i++ {
					trials = append(trials, Trial{Name: "t", Run: func() (any, error) {
						n := live.Add(1)
						for {
							p := peak.Load()
							if n <= p || peak.CompareAndSwap(p, n) {
								break
							}
						}
						live.Add(-1)
						return 0, nil
					}})
				}
				return trials, nil
			},
			Reduce: func(s experiments.Scale, outs []any) ([]experiments.Table, error) {
				return []experiments.Table{{Title: name}}, nil
			},
		}
	}
	a, b := mk("pool-a"), mk("pool-b")
	res, err := RunMany([]*Scenario{&a, &b}, Options{Scale: experiments.Quick(), Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Scenario != "pool-a" || res[1].Scenario != "pool-b" {
		t.Fatalf("result order wrong: %+v", res)
	}
	if peak.Load() > 4 {
		t.Fatalf("pool exceeded Parallel: peak %d", peak.Load())
	}
}

func TestRegistryShape(t *testing.T) {
	names := Names()
	if len(names) < 16 {
		t.Fatalf("registry holds only %d scenarios: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatalf("names not sorted at %d: %v", i, names)
		}
	}
	// Every paper figure and the required non-paper scenarios are present.
	for _, want := range []string{
		"fig1", "fig5", "medians", "fig7a", "fig7b", "fig7c", "fig8", "fig9",
		"fig10a", "fig10b", "fig10c", "fig11", "collection",
		"route-change", "ecmp-imbalance", "multi-tenant", "pathtrace",
	} {
		if _, ok := Lookup(want); !ok {
			t.Fatalf("scenario %q missing from registry", want)
		}
	}
	newCount := 0
	for _, sc := range All() {
		if sc.Figure == "new" {
			newCount++
		}
		if sc.Desc == "" {
			t.Fatalf("scenario %q has no description", sc.Name)
		}
	}
	if newCount < 3 {
		t.Fatalf("only %d non-paper scenarios registered", newCount)
	}
	if _, err := RunByName("no-such-scenario", Options{Scale: experiments.Quick()}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestRegisterRejectsDuplicatesAndIncomplete(t *testing.T) {
	expectPanic := func(name string, sc Scenario) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: Register did not panic", name)
			}
		}()
		Register(sc)
	}
	dup := syntheticScenario("fig5", 1, -1) // already registered by the catalog
	expectPanic("duplicate", dup)
	expectPanic("incomplete", Scenario{Name: "half-baked"})
}
