package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/admit"
	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hash"
	"repro/internal/pipeline"
)

func init() {
	Register(tenantOverloadScenario())
}

// This file is the QoS tier's golden scenario: a hog tenant offering far
// beyond its quota next to a victim tenant inside its own, both metered
// by one admit.Admitter under an injected clock. Everything — the clock,
// the packet stream, the per-packet shed verdicts — is a pure function
// of the scale seed, so the trial is golden-stable at any parallelism:
// the hog is shed down to its published quota with answers inside the
// predicted error envelope, and the victim loses nothing (its answers
// are byte-identical to a run with no QoS at all).

// tenantOverloadOut is one trial's admission record.
type tenantOverloadOut struct {
	shards       int
	hog          admit.TenantStats
	victim       admit.TenantStats
	hogMaxErr    float64 // worst per-flow |scaled-offered|/offered of the hog's rescaled counts
	hogEnvelope  float64 // the 4σ relative bound those counts must stay inside
	victimIntact bool    // victim answers byte-identical to a no-QoS reference
	capacity     []float64
	backoffs     uint64
	probes       uint64
}

var tenantOverloadShardAxis = []int{1, 4}

func tenantOverloadScenario() Scenario {
	return Scenario{
		Name:     "tenant-overload",
		Figure:   "new",
		Desc:     "hog tenant shed to its quota at a published sampling rate while the victim tenant loses nothing; AIMD capacity collapses and recovers under scripted stalls",
		Topology: "fat tree (K=8) switch universe, single collector admission front",
		Workload: "hog at 5x quota + victim at half quota, fixed-cadence frames under an injected clock",
		Queries:  "path 2×(b=4) + latency 8b in 16 bits",
		Stack:    "engine→admit (token buckets + seeded shed)→pipeline sink→answers; AIMD controller on scripted stalls",
		Plan: func(s experiments.Scale) ([]Trial, error) {
			seed := uint64(hash.Seed(s.Seed).Derive(0x7E4A7))
			ticks := 10 * s.Trials
			if ticks > 60 {
				ticks = 60
			}
			var trials []Trial
			for _, shards := range tenantOverloadShardAxis {
				shards := shards
				trials = append(trials, Trial{
					Name: fmt.Sprintf("shards-%d", shards),
					Run: func() (any, error) {
						return runTenantOverloadTrial(seed, shards, ticks)
					},
				})
			}
			return trials, nil
		},
		Reduce: func(s experiments.Scale, outs []any) ([]experiments.Table, error) {
			admission := experiments.Table{
				Title:   "Tenant overload: quota shedding with a published error envelope",
				Columns: []string{"sink shards", "tenant", "offered", "admitted", "shed", "sample rate", "count scale", "q-rank err", "count err (max/bound)", "victim intact"},
			}
			aimd := experiments.Table{
				Title:   "AIMD capacity under scripted stalls: initial, congested, floor, recovered",
				Columns: []string{"sink shards", "capacity trajectory (pkt/s)", "backoffs", "probes"},
			}
			yn := func(b bool) string {
				if b {
					return "yes"
				}
				return "NO"
			}
			for _, out := range outs {
				o := out.(tenantOverloadOut)
				row := func(ts admit.TenantStats, errCell, intact string) []string {
					return []string{
						fmt.Sprintf("%d", o.shards),
						ts.Tenant,
						fmt.Sprintf("%d", ts.Offered),
						fmt.Sprintf("%d", ts.Admitted),
						fmt.Sprintf("%d", ts.Shed),
						fmt.Sprintf("%.4f", ts.SampleRate),
						fmt.Sprintf("%.4f", ts.CountScale),
						fmt.Sprintf("%.4f", ts.QuantileRankError),
						errCell,
						intact,
					}
				}
				admission.Rows = append(admission.Rows,
					row(o.hog, fmt.Sprintf("%.4f/%.4f", o.hogMaxErr, o.hogEnvelope), "-"),
					row(o.victim, "0.0000/0.0000", yn(o.victimIntact)))
				traj := ""
				for i, c := range o.capacity {
					if i > 0 {
						traj += " -> "
					}
					traj += fmt.Sprintf("%.0f", c)
				}
				aimd.Rows = append(aimd.Rows, []string{
					fmt.Sprintf("%d", o.shards), traj,
					fmt.Sprintf("%d", o.backoffs), fmt.Sprintf("%d", o.probes),
				})
			}
			return []experiments.Table{admission, aimd}, nil
		},
	}
}

// runTenantOverloadTrial drives ticks frames of hog and victim traffic
// through one admission front at a fixed simulated cadence, lands the
// admitted packets in a sharded sink, and checks the QoS contract:
// hog admission bounded by burst + quota×time, hog counts recoverable
// inside the published envelope, victim untouched byte-for-byte. A
// second, pure-controller pass scripts a stall storm and a quiet
// recovery to pin the AIMD trajectory.
func runTenantOverloadTrial(seed uint64, shards, ticks int) (tenantOverloadOut, error) {
	out := tenantOverloadOut{shards: shards}
	tb, err := collector.NewTestbench(seed, 5)
	if err != nil {
		return out, err
	}
	const (
		tickNs    = 10_000_000 // 10ms per frame cadence
		quota     = 10_000.0   // pkt/s for both tenants
		hogPkts   = 500        // 50k pkt/s offered: 5x quota
		vicPkts   = 50         // 5k pkt/s offered: half quota
		hogFlows  = 4
		vicFlows  = 4
		hogExp    = 1
		vicExp    = 2
		minSample = 0.01
	)
	var now uint64
	clock := func() uint64 { return now }
	policy := admit.Policy{
		Tenants: map[string]admit.Quota{
			// Burst = one tick's quota share, so steady-state sampling
			// kicks in from the first over-quota frame instead of a
			// seconds-long free burst obscuring the trial.
			"hog":    {Rate: quota, Burst: quota * float64(tickNs) / 1e9, MinSample: minSample},
			"victim": {Rate: quota, Burst: quota * float64(tickNs) / 1e9, MinSample: minSample},
		},
		Seed:  seed,
		Clock: clock,
	}
	adm, err := admit.NewAdmitter(policy)
	if err != nil {
		return out, err
	}
	hog := adm.Tenant("hog")
	victim := adm.Tenant("victim")

	sink, err := pipeline.NewSink(tb.Engine, pipeline.Config{Shards: shards, Base: tb.Base})
	if err != nil {
		return out, err
	}
	defer sink.Close()
	// The no-QoS reference for the victim's conservation check.
	ref, err := pipeline.NewSink(tb.Engine, pipeline.Config{Shards: shards, Base: tb.Base})
	if err != nil {
		return out, err
	}
	defer ref.Close()

	// Pre-encode each tenant's full per-flow streams, then deal them out
	// in per-tick frames — the digest content is independent of the
	// admission decisions.
	hogStream := make([][]core.PacketDigest, hogFlows)
	vicStream := make([][]core.PacketDigest, vicFlows)
	for f := 0; f < hogFlows; f++ {
		hogStream[f] = tb.FlowBatch(hogExp, f, hogPkts/hogFlows*ticks, nil, nil)
	}
	for f := 0; f < vicFlows; f++ {
		vicStream[f] = tb.FlowBatch(vicExp, f, vicPkts/vicFlows*ticks, nil, nil)
	}

	// One frame per tenant per tick, every flow's packets riding in it —
	// the same shape a real exporter session offers the collector, so
	// one Decision's sampling rate applies uniformly across the flows.
	hogOffered := make([]int, hogFlows) // per-flow offered counts for the envelope check
	hogKept := make([]int, hogFlows)
	hogIdx := make(map[core.FlowKey]int, hogFlows)
	for f := 0; f < hogFlows; f++ {
		hogIdx[tb.FlowKeyFor(hogExp, f)] = f
	}
	frame := make([]core.PacketDigest, 0, hogPkts)
	shed := func(t *admit.Tenant, pkts []core.PacketDigest) []core.PacketDigest {
		d := t.Decide(len(pkts))
		kept := frame[:0]
		for _, pd := range pkts {
			if t.Keep(d, uint64(pd.Flow), pd.PktID) {
				kept = append(kept, pd)
			}
		}
		t.Account(len(kept), len(pkts))
		return kept
	}
	tickFrame := func(stream [][]core.PacketDigest, tick, per int) []core.PacketDigest {
		var pkts []core.PacketDigest
		for f := range stream {
			pkts = append(pkts, stream[f][tick*per:(tick+1)*per]...)
		}
		return pkts
	}
	for tick := 0; tick < ticks; tick++ {
		now += tickNs
		hogFrame := tickFrame(hogStream, tick, hogPkts/hogFlows)
		kept := shed(hog, hogFrame)
		for f := range hogOffered {
			hogOffered[f] += hogPkts / hogFlows
		}
		for _, pd := range kept {
			hogKept[hogIdx[pd.Flow]]++
		}
		sink.Ingest(kept)

		vicFrame := tickFrame(vicStream, tick, vicPkts/vicFlows)
		keptVic := shed(victim, vicFrame)
		if len(keptVic) != len(vicFrame) {
			return out, fmt.Errorf("scenario: victim inside its quota lost %d of %d packets at tick %d",
				len(vicFrame)-len(keptVic), len(vicFrame), tick)
		}
		sink.Ingest(keptVic)
		ref.Ingest(vicFrame)
	}
	sink.Barrier()
	ref.Barrier()
	out.hog = hog.Stats()
	out.victim = victim.Stats()

	// The hog is shed down to its published quota: admission can never
	// exceed burst + quota×elapsed + the minimum-sample residue.
	elapsed := float64(ticks) * tickNs / 1e9
	bound := quota*float64(tickNs)/1e9 + quota*elapsed + minSample*float64(out.hog.Offered)
	// Per-packet hash realization scatters around the expectation;
	// 4σ of the total admitted count covers it with huge margin.
	bound += 4 * math.Sqrt(float64(out.hog.Offered)*0.25)
	if float64(out.hog.Admitted) > bound {
		return out, fmt.Errorf("scenario: hog admitted %d packets, quota bounds %d", out.hog.Admitted, uint64(bound))
	}
	if out.hog.Shed == 0 {
		return out, fmt.Errorf("scenario: hog at 5x quota shed nothing")
	}
	if out.victim.Shed != 0 {
		return out, fmt.Errorf("scenario: victim shed %d packets", out.victim.Shed)
	}

	// Count-style answers rescaled by the published CountScale land
	// within a 4σ binomial envelope of the true offered counts — the
	// "degradation with a receipt" contract.
	p := out.hog.SampleRate
	for f := 0; f < hogFlows; f++ {
		scaled := float64(hogKept[f]) * out.hog.CountScale
		rel := math.Abs(scaled-float64(hogOffered[f])) / float64(hogOffered[f])
		if rel > out.hogMaxErr {
			out.hogMaxErr = rel
		}
	}
	out.hogEnvelope = 4 * math.Sqrt((1-p)/(p*float64(hogOffered[0])))
	if out.hogMaxErr > out.hogEnvelope {
		return out, fmt.Errorf("scenario: hog count error %.4f outside the %.4f envelope", out.hogMaxErr, out.hogEnvelope)
	}

	// Zero victim loss, proven end to end: the victim's answers out of
	// the QoS'd sink are byte-identical to the no-QoS reference.
	vicKeys := make([]core.FlowKey, vicFlows)
	for f := range vicKeys {
		vicKeys[f] = tb.FlowKeyFor(vicExp, f)
	}
	got, err := collector.SnapshotAnswers(sink.Snapshot(), tb.Queries(), vicKeys)
	if err != nil {
		return out, err
	}
	want, err := collector.SnapshotAnswers(ref.Snapshot(), tb.Queries(), vicKeys)
	if err != nil {
		return out, err
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		return out, err
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		return out, err
	}
	out.victimIntact = bytes.Equal(gotJSON, wantJSON)
	if !out.victimIntact {
		return out, fmt.Errorf("scenario: victim answers diverge from the no-QoS reference")
	}

	// AIMD trajectory under scripted stalls: congestion cuts capacity
	// (once per window however many stalls land), a storm walks it to
	// the floor, and a quiet stretch probes it back to the ceiling.
	ctrl, err := admit.NewController(admit.CapacityConfig{
		Initial: 1000, Min: 100, Max: 2000, Probe: 100, Beta: 0.5,
		ProbeEvery: 1e9, Window: 1e9, Burst: 0.1,
	}, clock)
	if err != nil {
		return out, err
	}
	record := func() { out.capacity = append(out.capacity, ctrl.Capacity()) }
	record() // initial: 1000
	// A full quiet window first (backoffs are rate-limited to one per
	// window from construction), then three stalls inside one window:
	// exactly one backoff.
	now += 2e9
	for i := 0; i < 3; i++ {
		ctrl.Observe(true)
		now += 1e8
	}
	record() // congested: 500
	// A stall every window walks capacity to the floor.
	for i := 0; i < 8; i++ {
		now += 1e9 + 1
		ctrl.Observe(true)
	}
	record() // floor: 100
	// A long quiet stretch probes it back to the ceiling.
	for i := 0; i < 40; i++ {
		now += 1e9 + 1
		ctrl.Observe(false)
	}
	record() // recovered: 2000
	st := ctrl.Stats()
	out.backoffs, out.probes = st.Backoffs, st.Probes
	want4 := []float64{1000, 500, 100, 2000}
	for i, c := range out.capacity {
		if c != want4[i] {
			return out, fmt.Errorf("scenario: AIMD trajectory[%d] = %v, want %v", i, c, want4[i])
		}
	}
	return out, nil
}
