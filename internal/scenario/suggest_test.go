package scenario

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestSuggestNearMisses(t *testing.T) {
	cases := []struct {
		query string
		want  string // must appear among the suggestions
	}{
		{"fig10x", "fig10a"},
		{"colector-scale", "collector-scale"},
		{"route-chang", "route-change"},
		{"pathtrac", "pathtrace"},
		{"FIG9", "fig9"},
	}
	for _, tc := range cases {
		got := Suggest(tc.query)
		found := false
		for _, s := range got {
			if s == tc.want {
				found = true
			}
		}
		if !found {
			t.Errorf("Suggest(%q) = %v, want it to include %q", tc.query, got, tc.want)
		}
		if len(got) > 3 {
			t.Errorf("Suggest(%q) returned %d names, cap is 3", tc.query, len(got))
		}
	}
	if got := Suggest("zzzzqqqq"); len(got) != 0 {
		t.Errorf("Suggest(garbage) = %v, want none", got)
	}
}

func TestUnknownScenarioErrorSuggests(t *testing.T) {
	_, err := RunNames([]string{"colector-scale"}, Options{Scale: experiments.Quick()})
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if !strings.Contains(err.Error(), "did you mean") ||
		!strings.Contains(err.Error(), "collector-scale") {
		t.Fatalf("miss error lacks suggestions: %v", err)
	}
	_, err = RunByName("fig10x", Options{Scale: experiments.Quick()})
	if err == nil || !strings.Contains(err.Error(), "did you mean") {
		t.Fatalf("RunByName miss lacks suggestions: %v", err)
	}
}

func TestEditDistance(t *testing.T) {
	for _, tc := range []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"kitten", "sitting", 3},
		{"fig9", "fig9", 0},
		{"fig10a", "fig10c", 1},
	} {
		if got := editDistance(tc.a, tc.b); got != tc.want {
			t.Errorf("editDistance(%q, %q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}
