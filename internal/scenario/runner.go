package scenario

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/experiments"
)

// Options configures one Runner invocation.
type Options struct {
	// Scale is validated up front (see experiments.Scale.Validate), so a
	// bad knob — including Shards — fails loudly for every scenario.
	Scale experiments.Scale
	// Parallel is the trial worker-pool size; values < 1 mean 1. Results
	// are bit-identical for any value: trials are hermetic, outputs land
	// at their plan index, and reduction is serial.
	Parallel int
}

// MaxParallel bounds Options.Parallel the way experiments.MaxShards
// bounds Scale.Shards.
const MaxParallel = 256

func (o Options) validate() error {
	if err := o.Scale.Validate(); err != nil {
		return err
	}
	if o.Parallel > MaxParallel {
		return fmt.Errorf("scenario: Parallel %d above %d", o.Parallel, MaxParallel)
	}
	return nil
}

// Run plans, executes, and reduces one scenario.
func Run(sc *Scenario, opts Options) (*Result, error) {
	results, err := RunMany([]*Scenario{sc}, opts)
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// RunByName runs one registered scenario.
func RunByName(name string, opts Options) (*Result, error) {
	sc, ok := Lookup(name)
	if !ok {
		return nil, unknownNameError(name)
	}
	return Run(sc, opts)
}

// RunMany executes several scenarios over one shared worker pool: every
// scenario is planned first, the union of trials drains through the pool
// (so a wide scenario keeps workers busy while a narrow one finishes),
// and each scenario reduces once its own trials are done. Results are in
// scenario order and bit-identical to running each scenario alone.
func RunMany(scs []*Scenario, opts Options) ([]*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	type job struct {
		sc    int // scenario index
		trial int // trial index within the scenario
	}
	plans := make([][]Trial, len(scs))
	var jobs []job
	for i, sc := range scs {
		trials, err := sc.Plan(opts.Scale)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: plan: %w", sc.Name, err)
		}
		if len(trials) == 0 {
			return nil, fmt.Errorf("scenario %q: plan produced no trials", sc.Name)
		}
		plans[i] = trials
		for t := range trials {
			jobs = append(jobs, job{sc: i, trial: t})
		}
	}

	outs := make([][]any, len(scs))
	errs := make([][]error, len(scs))
	for i := range plans {
		outs[i] = make([]any, len(plans[i]))
		errs[i] = make([]error, len(plans[i]))
	}
	workers := opts.Parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i >= int64(len(jobs)) {
					return
				}
				j := jobs[i]
				outs[j.sc][j.trial], errs[j.sc][j.trial] = plans[j.sc][j.trial].Run()
			}
		}()
	}
	wg.Wait()

	results := make([]*Result, len(scs))
	for i, sc := range scs {
		// Report the lowest-indexed failure so the error, too, is
		// independent of scheduling.
		for t, err := range errs[i] {
			if err != nil {
				return nil, fmt.Errorf("scenario %q: trial %q: %w", sc.Name, plans[i][t].Name, err)
			}
		}
		tables, err := sc.Reduce(opts.Scale, outs[i])
		if err != nil {
			return nil, fmt.Errorf("scenario %q: reduce: %w", sc.Name, err)
		}
		results[i] = &Result{
			Scenario: sc.Name,
			Figure:   sc.Figure,
			Desc:     sc.Desc,
			Trials:   len(plans[i]),
			Tables:   tables,
		}
	}
	return results, nil
}

// RunNames resolves names ("all" or an explicit list) and runs them over
// one shared pool.
func RunNames(names []string, opts Options) ([]*Result, error) {
	var scs []*Scenario
	for _, name := range names {
		if name == "all" {
			scs = All()
			continue
		}
		sc, ok := Lookup(name)
		if !ok {
			return nil, unknownNameError(name)
		}
		scs = append(scs, sc)
	}
	if len(scs) == 0 {
		return nil, fmt.Errorf("scenario: nothing to run")
	}
	return RunMany(scs, opts)
}
