// Package scenario is the declarative experiment engine of the
// reproduction: every paper figure — and any number of non-paper
// scenarios — is a Scenario value in a registry, executed by one shared
// Runner instead of hand-wired FigXX drivers.
//
// A Scenario declares what it is (name, paper figure or "new", topology,
// workload, transport, query set, recording stack) and how to run it:
//
//   - Plan expands the scenario into independent Trials at a given
//     experiments.Scale. Each trial owns all of its randomness up front —
//     seeds are derived by hash.RNG fan-out (or pure functions of the
//     scale) during planning, never drawn while trials execute;
//   - the Runner executes trials across a worker pool and stores each
//     output at its trial index;
//   - Reduce folds the indexed outputs into printable/JSON tables.
//
// Because trials are hermetic and outputs are reduced in plan order, a
// scenario's result is bit-identical for any worker count and any
// scheduling — the property the serial-vs-parallel golden tests pin for
// every registered scenario. Scenario count and core count are the two
// scaling axes: registering a new workload is writing a Plan/Reduce pair,
// and doubling the worker pool halves the wall clock without changing a
// byte of output.
//
// Scenarios that record digests do so through the production collector
// stack — Engine batch encode, the internal/wire switch→collector format,
// and the sharded sink (internal/pipeline) with Scale.Shards workers.
package scenario

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/experiments"
)

// Trial is one independent unit of a scenario's work. Run must be
// hermetic: no shared mutable state with other trials and no randomness
// beyond what Plan baked in, so trials can execute on any worker in any
// order.
type Trial struct {
	Name string
	Run  func() (any, error)
}

// Scenario declares one experiment. The descriptive fields feed -list and
// the README catalog; Plan/Reduce define the computation.
type Scenario struct {
	// Name is the registry key (e.g. "fig10c", "route-change").
	Name string
	// Figure is the paper figure this reproduces, or "new" for scenarios
	// beyond the paper's evaluation.
	Figure string
	// Desc says what the scenario measures, in one line.
	Desc string
	// Topology/Workload/Transport/Queries/Stack describe the setup:
	// network shape, traffic, transport protocol, telemetry query set,
	// and the recording path ("engine→wire→sink" for scenarios that
	// record digests; transport- or coding-only studies have none).
	Topology  string
	Workload  string
	Transport string
	Queries   string
	Stack     string
	// Plan expands the scenario into trials at scale s.
	Plan func(s experiments.Scale) ([]Trial, error)
	// Reduce folds trial outputs (indexed exactly as Plan returned the
	// trials) into result tables. It runs after every trial finished.
	Reduce func(s experiments.Scale, outs []any) ([]experiments.Table, error)
}

// Result is one scenario's reduced output: a JSON-stable, printable
// record (all table cells are strings, so serialization is byte-stable).
type Result struct {
	Scenario string              `json:"scenario"`
	Figure   string              `json:"figure"`
	Desc     string              `json:"desc,omitempty"`
	Trials   int                 `json:"trials"`
	Tables   []experiments.Table `json:"tables"`
}

var (
	regMu    sync.Mutex
	registry = map[string]*Scenario{}
)

// Register adds a scenario to the registry; registering a nil Plan,
// nil Reduce, empty name, or a duplicate name is a programming error and
// panics (registration happens at init time).
func Register(sc Scenario) {
	if sc.Name == "" || sc.Plan == nil || sc.Reduce == nil {
		panic(fmt.Sprintf("scenario: incomplete registration %+v", sc.Name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[sc.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration %q", sc.Name))
	}
	registry[sc.Name] = &sc
}

// Lookup returns a registered scenario by name.
func Lookup(name string) (*Scenario, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	sc, ok := registry[name]
	return sc, ok
}

// Names returns every registered scenario name, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// All returns every registered scenario in Names order.
func All() []*Scenario {
	names := Names()
	out := make([]*Scenario, len(names))
	for i, name := range names {
		out[i], _ = Lookup(name)
	}
	return out
}
