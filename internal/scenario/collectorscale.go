package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/collector"
	"repro/internal/experiments"
	"repro/internal/hash"
)

func init() {
	Register(collectorScaleScenario())
}

// collectorScaleOut is one trial's conformance record. Every field is a
// pure function of the testbench shape, so the scenario's output is
// golden-stable at any parallelism.
type collectorScaleOut struct {
	shards      int
	identical   bool
	packets     uint64
	bytesPerPkt float64
	decoded     int // flows whose path query finished
	latHops     int // (flow, hop) latency summaries recovered
}

var collectorShardAxis = []int{1, 4, 16}

func collectorScaleScenario() Scenario {
	const (
		nExporters = 4
		flowsPer   = 4
		frameBatch = 128
	)
	return Scenario{
		Name:     "collector-scale",
		Figure:   "new",
		Desc:     "loopback pintd deployment: TCP-framed ingest answers bit-identically to the in-process sink",
		Topology: "fat tree (K=8) switch universe, loopback TCP",
		Workload: "4 exporter connections x 4 flows, engine-batch-encoded digests",
		Queries:  "path 2×(b=4) + latency 8b in 16 bits",
		Stack:    "engine→wire frames→TCP→collector→sharded sink",
		Plan: func(s experiments.Scale) ([]Trial, error) {
			// Packets per flow scale with Trials, capped so the paper
			// scale doesn't turn a conformance check into a soak test.
			pktsPer := 60 * s.Trials
			if pktsPer > 600 {
				pktsPer = 600
			}
			seed := uint64(hash.Seed(s.Seed).Derive(0xC01EC7))
			var trials []Trial
			for _, shards := range collectorShardAxis {
				shards := shards
				trials = append(trials, Trial{
					Name: fmt.Sprintf("shards-%d", shards),
					Run: func() (any, error) {
						return runCollectorScaleTrial(seed, shards, nExporters, flowsPer, pktsPer, frameBatch)
					},
				})
			}
			return trials, nil
		},
		Reduce: func(s experiments.Scale, outs []any) ([]experiments.Table, error) {
			t := experiments.Table{
				Title: fmt.Sprintf(
					"Collector conformance: loopback TCP vs in-process, %d exporters x %d flows",
					nExporters, flowsPer),
				Columns: []string{"sink shards", "packets", "bytes/pkt", "paths decoded", "latency hops", "bit-identical"},
			}
			for _, out := range outs {
				o := out.(collectorScaleOut)
				ident := "yes"
				if !o.identical {
					ident = "NO"
				}
				t.Rows = append(t.Rows, []string{
					fmt.Sprintf("%d", o.shards),
					fmt.Sprintf("%d", o.packets),
					experiments.F(o.bytesPerPkt),
					fmt.Sprintf("%d/%d", o.decoded, nExporters*flowsPer),
					fmt.Sprintf("%d", o.latHops),
					ident,
				})
			}
			return []experiments.Table{t}, nil
		},
	}
}

// runCollectorScaleTrial runs the identical deployment through the
// networked collector (real loopback sockets, concurrent exporters) and
// the in-process sink, and demands byte-identical JSON answers. A
// mismatch is a trial error — the registry fails loudly rather than
// tabulating a broken collector.
func runCollectorScaleTrial(seed uint64, shards, nExporters, flowsPer, pktsPer, frameBatch int) (collectorScaleOut, error) {
	out := collectorScaleOut{shards: shards}
	tb, err := collector.NewTestbench(seed, 5)
	if err != nil {
		return out, err
	}
	remote, err := tb.RunLoopback(shards, nExporters, flowsPer, pktsPer, frameBatch)
	if err != nil {
		return out, err
	}
	local, err := tb.RunInProcess(shards, nExporters, flowsPer, pktsPer)
	if err != nil {
		return out, err
	}
	remoteJSON, err := json.Marshal(remote.Answers)
	if err != nil {
		return out, err
	}
	localJSON, err := json.Marshal(local.Answers)
	if err != nil {
		return out, err
	}
	out.identical = bytes.Equal(remoteJSON, localJSON)
	if !out.identical {
		return out, fmt.Errorf("scenario: collector answers diverge from in-process at %d shards", shards)
	}
	out.packets = remote.Packets
	out.bytesPerPkt = remote.BytesPerPacket()
	for _, fa := range remote.Answers {
		for _, a := range fa.Answers {
			if a.Done {
				out.decoded++
			}
			out.latHops += len(a.Hops)
		}
	}
	return out, nil
}
