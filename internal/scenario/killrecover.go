package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hash"
	"repro/internal/pipeline"
)

func init() {
	Register(killRecoverScenario())
}

// killRecoverOut is one trial's crash-recovery record. Every field is a
// pure function of (seed, shards, workload shape): the store clock is an
// injected counter, the whole ingest stream is flushed before the
// simulated SIGKILL, and the torn tail is a constructed partial block —
// so the trial is golden-stable at any parallelism.
type killRecoverOut struct {
	shards     int
	ingested   uint64 // packets the collector accepted before the kill
	durable    uint64 // packets recovery replayed from the log
	tornBytes  int64  // unflushed tail the recovery report cut
	identical  bool   // recovered answers == uncrashed reference, byte for byte
	logIdent   bool   // log-only replay == recovered live state (VerifyAgainstLive)
	answerHash string // first 8 hex of sha256 over the answers JSON: equal across shard rows
	restarted  uint64 // packets after a post-recovery wave and a second restart
}

var killRecoverShardAxis = []int{1, 4}

func killRecoverScenario() Scenario {
	const (
		nFlows    = 4
		waveFlows = 2
	)
	return Scenario{
		Name:     "kill-recover",
		Figure:   "new",
		Desc:     "SIGKILLed-and-restarted durable collector answers bit-for-bit identically to one that never crashed, modulo an explicitly-reported unflushed tail",
		Topology: "fat tree (K=8) switch universe, single collector + segment log on scratch disk",
		Workload: "two ingest waves, a checkpointed flush, a constructed torn tail, kill, recover, re-ingest, restart",
		Queries:  "path 2×(b=4) + latency 8b in 16 bits",
		Stack:    "engine→pipeline sink→segstore writer→segment log→crash→recovery replay→answers",
		Plan: func(s experiments.Scale) ([]Trial, error) {
			pktsPer := 40 * s.Trials
			if pktsPer > 400 {
				pktsPer = 400
			}
			seed := uint64(hash.Seed(s.Seed).Derive(0xC4A54))
			var trials []Trial
			for _, shards := range killRecoverShardAxis {
				shards := shards
				trials = append(trials, Trial{
					Name: fmt.Sprintf("shards-%d", shards),
					Run: func() (any, error) {
						return runKillRecoverTrial(seed, shards, nFlows, waveFlows, pktsPer)
					},
				})
			}
			return trials, nil
		},
		Reduce: func(s experiments.Scale, outs []any) ([]experiments.Table, error) {
			t := experiments.Table{
				Title:   "Kill-recover: durable collector crash recovery vs an uncrashed run",
				Columns: []string{"sink shards", "ingested", "recovered", "torn bytes", "bit-identical", "log==live", "answers sha256[:8]", "after restart"},
			}
			yn := func(b bool) string {
				if b {
					return "yes"
				}
				return "NO"
			}
			for _, out := range outs {
				o := out.(killRecoverOut)
				t.Rows = append(t.Rows, []string{
					fmt.Sprintf("%d", o.shards),
					fmt.Sprintf("%d", o.ingested),
					fmt.Sprintf("%d", o.durable),
					fmt.Sprintf("%d", o.tornBytes),
					yn(o.identical),
					yn(o.logIdent),
					o.answerHash,
					fmt.Sprintf("%d", o.restarted),
				})
			}
			return []experiments.Table{t}, nil
		},
	}
}

// tornTail is the constructed partial block appended after the simulated
// SIGKILL: a frame header promising far more payload than follows — the
// exact shape a crash mid-write leaves. Recovery must cut and report it.
func tornTail() []byte {
	buf := binary.LittleEndian.AppendUint32(nil, 1<<12) // claimed payload length
	buf = binary.LittleEndian.AppendUint32(buf, 0xDEAD) // crc of bytes that never landed
	return append(buf, 0x01, 0x02, 0x03, 0x04, 0x05)
}

// newestSegment returns the lexically-last segment file in dir — the one
// the crashed store was appending to.
func newestSegment(dir string) (string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".pint" {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return "", fmt.Errorf("scenario: no segments in %s", dir)
	}
	sort.Strings(names)
	return filepath.Join(dir, names[len(names)-1]), nil
}

// runKillRecoverTrial runs one shard-count cell of the torture loop:
// ingest two waves into a durable collector, flush, SIGKILL it (abandon
// + a constructed torn tail), recover, and demand the restarted
// collector answer byte-identically to a collector that never crashed —
// with the torn tail reported to the byte. Then ingest a third wave,
// restart once more, and demand the log still accounts for everything.
func runKillRecoverTrial(seed uint64, shards, nFlows, waveFlows, pktsPer int) (killRecoverOut, error) {
	out := killRecoverOut{shards: shards}
	tb, err := collector.NewTestbench(seed, 5)
	if err != nil {
		return out, err
	}
	dir, cleanup, err := tb.ScratchDir("pint-killrecover-")
	if err != nil {
		return out, err
	}
	defer cleanup() // bound at creation: a failed start below cannot leak the dir

	pcfg := pipeline.Config{Shards: shards, BatchSize: 64, Base: tb.Base}
	opts := func() collector.DurableOptions {
		var ts uint64
		return collector.DurableOptions{
			DataDir: dir,
			NoSync:  true, // scratch disk; the smoke test exercises real fsync
			Now:     func() uint64 { ts += 10; return ts },
		}
	}
	d, err := collector.OpenDurableSink(tb.Engine, tb.Queries(), pcfg, opts())
	if err != nil {
		return out, err
	}

	// Two ingest waves, all flushed to the log (the deterministic durable
	// prefix), then the kill: abandon the writer mid-life and plant a
	// torn half-block, exactly what a SIGKILL mid-append leaves on disk.
	var stream []core.PacketDigest
	ingest := func(exp uint64, flows, pkts int) {
		for f := 0; f < flows; f++ {
			batch := tb.FlowBatch(exp, f, pkts, nil, nil)
			d.Sink.Ingest(batch)
			stream = append(stream, batch...)
		}
	}
	ingest(1, nFlows, pktsPer)
	if err := d.Checkpoint(); err != nil {
		return out, err
	}
	ingest(2, waveFlows, pktsPer)
	if err := d.Checkpoint(); err != nil {
		return out, err
	}
	out.ingested = uint64(len(stream))
	d.Abandon()
	seg, err := newestSegment(dir)
	if err != nil {
		return out, err
	}
	torn := tornTail()
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return out, err
	}
	if _, err := f.Write(torn); err != nil {
		f.Close()
		return out, err
	}
	if err := f.Close(); err != nil {
		return out, err
	}

	// Recovery: the torn tail is reported to the byte, every flushed
	// packet replays, and the answers are bit-identical to a collector
	// that ingested the same durable prefix and never crashed.
	re, err := collector.OpenDurableSink(tb.Engine, tb.Queries(), pcfg, opts())
	if err != nil {
		return out, err
	}
	closeRe := re.Close
	defer func() { closeRe() }()
	out.durable = re.Replayed
	out.tornBytes = re.Recovery.TornBytes
	if out.tornBytes != int64(len(torn)) {
		return out, fmt.Errorf("scenario: recovery cut %d torn bytes, planted %d", out.tornBytes, len(torn))
	}
	if out.durable != out.ingested {
		return out, fmt.Errorf("scenario: recovered %d packets, flushed %d — conservation broken", out.durable, out.ingested)
	}

	ref, err := pipeline.NewSink(tb.Engine, pcfg)
	if err != nil {
		return out, err
	}
	ref.Ingest(stream[:out.durable])
	if err := ref.Close(); err != nil {
		return out, err
	}
	want, err := collector.SnapshotAnswers(ref.Snapshot(), tb.Queries(), nil)
	if err != nil {
		return out, err
	}
	got, err := collector.SnapshotAnswers(re.Sink.Snapshot(), tb.Queries(), nil)
	if err != nil {
		return out, err
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		return out, err
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		return out, err
	}
	out.identical = bytes.Equal(gotJSON, wantJSON)
	if !out.identical {
		return out, fmt.Errorf("scenario: shards=%d: recovered answers diverge from the uncrashed run", shards)
	}
	sum := sha256.Sum256(gotJSON)
	out.answerHash = fmt.Sprintf("%x", sum[:4])
	if err := re.VerifyAgainstLive(); err != nil {
		return out, err
	}
	out.logIdent = true

	// Life goes on after recovery: a third wave, a clean shutdown, and a
	// second restart must account for every packet ever flushed.
	for f := 0; f < waveFlows; f++ {
		batch := tb.FlowBatch(3, uint64FlowSalt+f, pktsPer, nil, nil)
		re.Sink.Ingest(batch)
		stream = append(stream, batch...)
	}
	if err := re.Checkpoint(); err != nil {
		return out, err
	}
	if err := re.Close(); err != nil {
		return out, err
	}
	closeRe = func() error { return nil }

	final, err := collector.OpenDurableSink(tb.Engine, tb.Queries(), pcfg, opts())
	if err != nil {
		return out, err
	}
	defer final.Close()
	out.restarted = final.Replayed
	if out.restarted != uint64(len(stream)) {
		return out, fmt.Errorf("scenario: second restart replayed %d packets, want %d", out.restarted, len(stream))
	}
	return out, nil
}

// uint64FlowSalt offsets the third wave's flow indices so they are
// disjoint from the first two waves'.
const uint64FlowSalt = 100
