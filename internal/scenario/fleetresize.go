package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/federation"
	"repro/internal/hash"
)

func init() {
	Register(fleetResizeScenario())
}

// fleetResizeOut is one trial's conformance record for a live fleet
// resize: a deployment streams half its packets, the fleet grows or
// shrinks underneath it (epoch fence → exporter reroute → zero-loss
// state hand-off → new map published), the exporters re-partition and
// stream the rest — and the answers must be byte-identical both to the
// in-process reference and to a fleet that ran at the final membership
// from the start. Every field is a pure function of the testbench shape.
type fleetResizeOut struct {
	from, to  int
	shards    int
	packets   uint64 // total streamed, conservation-asserted at ingest
	moved     int    // flows the hand-off shipped
	movedOK   bool   // moved set == exactly the homes-changed set
	identProc bool   // resized answers == in-process reference
	identNew  bool   // resized answers == fleet started at final membership
}

func fleetResizeScenario() Scenario {
	const (
		nExporters = 3
		flowsPer   = 4
		frameBatch = 64
		shards     = 2
	)
	resizes := []struct{ from, to int }{{2, 4}, {4, 2}}
	return Scenario{
		Name:     "fleet-resize",
		Figure:   "new",
		Desc:     "live fleet resize mid-stream: epoch-fenced reroute + zero-loss state hand-off answers byte-identically to a fleet started at the final membership",
		Topology: "fat tree (K=8) switch universe, loopback TCP fleet",
		Workload: "3 exporters x 4 flows; resize after half the packets, exporters follow the new fleet map live",
		Queries:  "path 2×(b=4) + latency 8b in 16 bits",
		Stack:    "engine→wire frames→TCP→collector fleet→hand-off frames→Recording.Merge",
		Plan: func(s experiments.Scale) ([]Trial, error) {
			pktsPer := 50 * s.Trials
			if pktsPer > 500 {
				pktsPer = 500
			}
			if pktsPer < 2 {
				pktsPer = 2
			}
			seed := uint64(hash.Seed(s.Seed).Derive(0xF1EE7))
			var trials []Trial
			for _, rs := range resizes {
				rs := rs
				trials = append(trials, Trial{
					Name: fmt.Sprintf("%dto%d", rs.from, rs.to),
					Run: func() (any, error) {
						return runFleetResizeTrial(seed, rs.from, rs.to, shards, nExporters, flowsPer, pktsPer, frameBatch)
					},
				})
			}
			return trials, nil
		},
		Reduce: func(s experiments.Scale, outs []any) ([]experiments.Table, error) {
			t := experiments.Table{
				Title: fmt.Sprintf(
					"Elastic fleet: mid-stream resize conformance, %d exporters x %d flows",
					nExporters, flowsPer),
				Columns: []string{"resize", "sink shards", "packets", "flows moved",
					"moved set minimal", "identical to in-process", "identical to fresh fleet"},
			}
			yn := func(b bool) string {
				if b {
					return "yes"
				}
				return "NO"
			}
			for _, out := range outs {
				o := out.(fleetResizeOut)
				t.Rows = append(t.Rows, []string{
					fmt.Sprintf("%d->%d", o.from, o.to),
					fmt.Sprintf("%d", o.shards),
					fmt.Sprintf("%d", o.packets),
					fmt.Sprintf("%d/%d", o.moved, nExporters*flowsPer),
					yn(o.movedOK),
					yn(o.identProc),
					yn(o.identNew),
				})
			}
			return []experiments.Table{t}, nil
		},
	}
}

// runFleetResizeTrial runs one resize direction: stream phase A (half of
// every flow's packets) into a fleet of fromN, resize to toN while the
// exporters are live (they follow the fence via the reroute nudge and
// the published map), stream phase B, and demand byte-identical answers
// against both references plus exact packet conservation.
func runFleetResizeTrial(seed uint64, fromN, toN, shards, nExporters, flowsPer, pktsPer, frameBatch int) (fleetResizeOut, error) {
	out := fleetResizeOut{from: fromN, to: toN, shards: shards}
	tb, err := collector.NewTestbench(seed, 5)
	if err != nil {
		return out, err
	}
	epoch0 := seed ^ uint64(fromN)<<12 ^ uint64(toN)<<4
	fleet, err := federation.NewFleet(tb,
		federation.WithSize(fromN),
		federation.WithShards(shards),
		federation.WithFleetEpoch(epoch0),
	)
	if err != nil {
		return out, err
	}
	defer fleet.Shutdown(context.Background())
	oldMap := fleet.CurrentMap()

	// Every exporter pre-encodes all its flows, connects through the
	// options API with the fleet's roster fetch, and splits each flow's
	// batch at the resize point.
	pktsA := pktsPer / 2
	exps := make([]*collector.FleetExporter, nExporters)
	batches := make([][][]core.PacketDigest, nExporters)
	defer func() {
		for _, fe := range exps {
			if fe != nil {
				fe.Close()
			}
		}
	}()
	for e := 0; e < nExporters; e++ {
		exp := uint64(e) + 1
		vals := make([]core.HopValues, pktsPer)
		batches[e] = make([][]core.PacketDigest, flowsPer)
		for f := 0; f < flowsPer; f++ {
			batches[e][f] = tb.FlowBatch(exp, f, pktsPer, nil, vals)
		}
		fe, err := collector.Connect(tb.Engine, exp, fmt.Sprintf("resize-%d", exp),
			collector.WithFleetMap(fleet.CurrentMap()),
			collector.WithRosterFetch(fleet.RosterFetch()),
			collector.WithFrameBatch(frameBatch),
			collector.WithTenant(tb.Tenant))
		if err != nil {
			return out, err
		}
		exps[e] = fe
	}

	// Phase A: every flow sends its first half, so the moving-state set
	// at resize time is exactly the full flow set — deterministic.
	for e := range exps {
		for f := 0; f < flowsPer; f++ {
			if err := exps[e].Send(batches[e][f][:pktsA]); err != nil {
				return out, fmt.Errorf("scenario: phase A exporter %d: %w", e+1, err)
			}
		}
		if err := exps[e].Flush(); err != nil {
			return out, err
		}
	}

	// Resize while the exporters are live. The coordinator blocks until
	// every fenced session closes, so each exporter must keep servicing
	// the nudge (Poke) while it runs — one goroutine per exporter, like a
	// production send loop. The poke loops can't share a goroutine: a
	// nudged Poke blocks until the new map publishes, which needs every
	// OTHER exporter to have closed its fenced sessions first.
	type resizeResult struct {
		moves []federation.Move
		err   error
	}
	resized := make(chan resizeResult, 1)
	go func() {
		moves, err := fleet.Resize(context.Background(), toN)
		resized <- resizeResult{moves, err}
	}()
	done := make(chan struct{})
	pokeErrs := make([]error, len(exps))
	var pokers sync.WaitGroup
	for e := range exps {
		pokers.Add(1)
		go func(e int) {
			defer pokers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if err := exps[e].Poke(); err != nil {
					pokeErrs[e] = err
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(e)
	}
	rr := <-resized
	close(done)
	pokers.Wait()
	if rr.err != nil {
		return out, fmt.Errorf("scenario: resize %d->%d: %w", fromN, toN, rr.err)
	}
	for e, err := range pokeErrs {
		if err != nil {
			return out, fmt.Errorf("scenario: exporter %d reroute: %w", e+1, err)
		}
	}
	newMap := fleet.CurrentMap()
	out.moved = len(rr.moves)

	// The planner's minimality contract, checked against the maps: the
	// moved set is exactly the set of flows whose rendezvous home name
	// changed.
	movedSet := map[core.FlowKey]bool{}
	for _, mv := range rr.moves {
		movedSet[mv.Flow] = true
	}
	allFlows := tb.Flows(nExporters, flowsPer)
	out.movedOK = true
	for _, flow := range allFlows {
		changed := oldMap.HomeName(flow) != newMap.HomeName(flow)
		if changed != movedSet[flow] {
			out.movedOK = false
			return out, fmt.Errorf("scenario: flow %d moved=%v, home changed=%v", flow, movedSet[flow], changed)
		}
	}

	// Phase B: the remaining halves, routed under the new map by the
	// rerouted sessions.
	for e := range exps {
		for f := 0; f < flowsPer; f++ {
			if err := exps[e].Send(batches[e][f][pktsA:]); err != nil {
				return out, fmt.Errorf("scenario: phase B exporter %d: %w", e+1, err)
			}
		}
		if err := exps[e].Close(); err != nil {
			return out, err
		}
		exps[e] = nil
	}

	// Conservation: every streamed packet is ingested exactly once at a
	// member that is still in the fleet. A shrink's departed members took
	// their phase-A ingest counters with them — that share is computed
	// from the (deterministic) old routing, not measured.
	total := uint64(nExporters * flowsPer * pktsPer)
	out.packets = total
	departedA := uint64(0)
	for _, flow := range allFlows {
		if oldMap.FlowHome(flow) >= toN {
			departedA += uint64(pktsA)
		}
	}
	if err := fleet.WaitIngested(total-departedA, 30*time.Second); err != nil {
		return out, fmt.Errorf("scenario: post-resize conservation: %w", err)
	}

	// Reference 1: the identical full deployment into one in-process sink.
	local, err := tb.RunInProcess(shards, nExporters, flowsPer, pktsPer)
	if err != nil {
		return out, err
	}
	localJSON, err := json.Marshal(local.Answers)
	if err != nil {
		return out, err
	}
	resizedAnswers, err := fleet.MergedAnswers(nil)
	if err != nil {
		return out, err
	}
	resizedJSON, err := json.Marshal(resizedAnswers)
	if err != nil {
		return out, err
	}
	out.identProc = bytes.Equal(resizedJSON, localJSON)
	if !out.identProc {
		return out, fmt.Errorf("scenario: resized fleet diverges from in-process reference (%d->%d)", fromN, toN)
	}

	// Reference 2: a fleet that ran at the final membership from the
	// start — same member names, same shards, whole deployment.
	fresh, err := federation.NewFleet(tb,
		federation.WithSize(toN),
		federation.WithShards(shards),
		federation.WithFleetEpoch(epoch0+100),
	)
	if err != nil {
		return out, err
	}
	defer fresh.Shutdown(context.Background())
	sent, _, err := fresh.Stream(nExporters, flowsPer, pktsPer, frameBatch)
	if err != nil {
		return out, err
	}
	if err := fresh.WaitIngested(sent, 30*time.Second); err != nil {
		return out, err
	}
	freshAnswers, err := fresh.MergedAnswers(nil)
	if err != nil {
		return out, err
	}
	freshJSON, err := json.Marshal(freshAnswers)
	if err != nil {
		return out, err
	}
	out.identNew = bytes.Equal(resizedJSON, freshJSON)
	if !out.identNew {
		return out, fmt.Errorf("scenario: resized fleet diverges from a fleet started at %d members", toN)
	}
	return out, nil
}
