package scenario

import (
	"fmt"
	"sort"
	"strings"
)

// Suggest returns up to three registered scenario names close to a
// mistyped query: substring matches first, then small-edit-distance
// neighbors (≤ 1/3 of the query length, minimum 2). It backs the CLI's
// "did you mean" hint.
func Suggest(name string) []string {
	query := strings.ToLower(name)
	type cand struct {
		name string
		dist int
	}
	var cands []cand
	for _, reg := range Names() {
		lower := strings.ToLower(reg)
		switch {
		case strings.Contains(lower, query) || strings.Contains(query, lower):
			cands = append(cands, cand{reg, 0})
		default:
			max := len(query) / 3
			if max < 2 {
				max = 2
			}
			if d := editDistance(query, lower); d <= max {
				cands = append(cands, cand{reg, d})
			}
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].dist < cands[j].dist })
	out := make([]string, 0, 3)
	for _, c := range cands {
		if len(out) == 3 {
			break
		}
		out = append(out, c.name)
	}
	return out
}

// unknownNameError builds the registry's miss message, with near-miss
// suggestions when any exist.
func unknownNameError(name string) error {
	if sugg := Suggest(name); len(sugg) > 0 {
		return fmt.Errorf("scenario: unknown scenario %q — did you mean %s? (-list shows the catalog)",
			name, strings.Join(sugg, ", "))
	}
	return fmt.Errorf("scenario: unknown scenario %q (-list shows the catalog)", name)
}

// editDistance is the Levenshtein distance over bytes (scenario names
// are ASCII), two-row dynamic program.
func editDistance(a, b string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	curr := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		curr[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			curr[j] = min3(prev[j]+1, curr[j-1]+1, prev[j-1]+cost)
		}
		prev, curr = curr, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
