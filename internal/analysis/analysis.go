// Package analysis implements the probabilistic bounds of the paper's
// Appendix A in executable form: the binomial success bound (Lemma 4),
// the Double Dixie Cup bound (Theorem 5), the partial coupon collector
// tail (Theorem 8), the all-but-ψk collection bound (Lemma 9), and the
// sample-complexity statements of Theorems 1 and 2. The test suite checks
// each closed form against Monte Carlo simulation, which is how the
// repository "proves" the performance bounds hold for the implementation
// and not just on paper.
package analysis

import (
	"math"
)

// Harmonic returns the n-th harmonic number H_n.
func Harmonic(n int) float64 {
	h := 0.0
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h
}

// CouponCollectorMean returns k·H_k, the expected draws to collect all of
// k equally likely coupons.
func CouponCollectorMean(k int) float64 {
	return float64(k) * Harmonic(k)
}

// PartialCouponMean returns r·(H_r − H_{r−n}): the expected draws to see n
// distinct coupons out of r (Theorem 8's E[A]).
func PartialCouponMean(r, n int) float64 {
	if n > r {
		n = r
	}
	return float64(r) * (Harmonic(r) - Harmonic(r-n))
}

// PartialCouponTail returns Theorem 8's high-probability bound: with
// probability 1−δ, seeing n distinct coupons out of r takes at most
//
//	E[A] + r·ln(1/δ)/(r−n) + sqrt(2·r·E[A]·ln(1/δ))/(r−n)
//
// draws. n must be strictly below r for the bound to be finite.
func PartialCouponTail(r, n int, delta float64) float64 {
	if n >= r {
		return math.Inf(1)
	}
	ea := PartialCouponMean(r, n)
	ln := math.Log(1 / delta)
	gap := float64(r - n)
	return ea + float64(r)*ln/gap + math.Sqrt(2*float64(r)*ea*ln)/gap
}

// Lemma4Draws returns Lemma 4's N: the number of independent probability-p
// trials after which at least k successes occur except with probability δ:
//
//	N = (k + 2·ln(1/δ) + sqrt(2k·ln(1/δ))) / p.
func Lemma4Draws(k int, p, delta float64) float64 {
	ln := math.Log(1 / delta)
	return (float64(k) + 2*ln + math.Sqrt(2*float64(k)*ln)) / p
}

// DoubleDixieCupDraws returns Theorem 5's N: the number of uniform draws
// over k coupons after which every coupon has at least z copies except
// with probability δ:
//
//	N = k·( z−1 + ln(k/δ) + sqrt((z−1+ln(k/δ))² − (z−1)²/4) ).
func DoubleDixieCupDraws(k, z int, delta float64) float64 {
	a := float64(z-1) + math.Log(float64(k)/delta)
	inner := a*a - float64(z-1)*float64(z-1)/4
	if inner < 0 {
		inner = 0
	}
	return float64(k) * (a + math.Sqrt(inner))
}

// Lemma9Draws returns Lemma 9's bound on collecting all but ψ·K coupons:
//
//	K·ln(1/ψ) + (1/ψ)·ln(1/δ) + sqrt(2·K·(1/ψ)·ln(1/ψ)·ln(1/δ)).
func Lemma9Draws(k int, psi, delta float64) float64 {
	if psi <= 0 || psi > 0.5 {
		return math.Inf(1)
	}
	lnPsi := math.Log(1 / psi)
	lnD := math.Log(1 / delta)
	return float64(k)*lnPsi + lnD/psi + math.Sqrt(2*float64(k)/psi*lnPsi*lnD)
}

// Theorem1Packets returns the sample complexity of the quantile
// aggregation: O(k·ε⁻²) packets give every hop Θ(ε⁻²) samples, enough for
// a (φ±ε)-quantile. The constant below (4) comes from the Chernoff
// argument in A.1 and is validated empirically in the tests.
func Theorem1Packets(k int, eps float64) int {
	return int(math.Ceil(4 * float64(k) / (eps * eps)))
}

// Theorem1Space returns the per-flow space of Theorem 1: O(k·ε⁻¹) digest
// slots when a KLL sketch summarizes each hop's sub-stream.
func Theorem1Space(k int, eps float64) int {
	return int(math.Ceil(4 * float64(k) / eps))
}

// Theorem2Packets returns the sample complexity of the frequent-values
// aggregation (same O(k·ε⁻²) shape as Theorem 1).
func Theorem2Packets(k int, eps float64) int {
	return Theorem1Packets(k, eps)
}

// Theorem3Packets returns the multi-layer scheme's k·(log log* k + c)
// packet bound with A.3's constant c = 2 for d = k.
func Theorem3Packets(k int) float64 {
	ls := 0
	x := float64(k)
	for x > 1 {
		x = math.Log2(x)
		ls++
	}
	lls := math.Log2(float64(ls))
	if lls < 0 {
		lls = 0
	}
	return float64(k) * (lls + 2)
}

// MorrisBitsBound returns §4.3's randomized-counting width:
// O(log ε⁻¹ + log log(2^q·k·ε²)) bits to (1+ε)-approximate a per-packet
// aggregate of q-bit values over k hops.
func MorrisBitsBound(q, k int, eps float64) int {
	inner := math.Pow(2, float64(q)) * float64(k) * eps * eps
	if inner < 2 {
		inner = 2
	}
	v := math.Log2(1/eps) + math.Log2(math.Log2(inner))
	if v < 1 {
		v = 1
	}
	return int(math.Ceil(v))
}
