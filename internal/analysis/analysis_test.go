package analysis

import (
	"math"
	"sort"
	"testing"

	"repro/internal/hash"
)

func TestHarmonic(t *testing.T) {
	if Harmonic(1) != 1 {
		t.Fatal("H_1 must be 1")
	}
	if math.Abs(Harmonic(2)-1.5) > 1e-12 {
		t.Fatal("H_2 must be 1.5")
	}
	// H_n ≈ ln n + γ.
	if math.Abs(Harmonic(10000)-(math.Log(10000)+0.5772)) > 0.001 {
		t.Fatalf("H_10000 = %v", Harmonic(10000))
	}
}

// couponTrial draws until n distinct of r coupons are seen; returns draws.
func couponTrial(rng *hash.RNG, r, n int) int {
	seen := make([]bool, r)
	distinct, draws := 0, 0
	for distinct < n {
		c := rng.Intn(r)
		draws++
		if !seen[c] {
			seen[c] = true
			distinct++
		}
	}
	return draws
}

func TestCouponCollectorMeanMonteCarlo(t *testing.T) {
	rng := hash.NewRNG(1)
	const k, trials = 25, 3000
	total := 0
	for i := 0; i < trials; i++ {
		total += couponTrial(rng, k, k)
	}
	got := float64(total) / trials
	want := CouponCollectorMean(k)
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("empirical %v vs formula %v", got, want)
	}
}

func TestPartialCouponMeanMonteCarlo(t *testing.T) {
	rng := hash.NewRNG(2)
	const r, n, trials = 50, 25, 3000
	total := 0
	for i := 0; i < trials; i++ {
		total += couponTrial(rng, r, n)
	}
	got := float64(total) / trials
	want := PartialCouponMean(r, n)
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("empirical %v vs formula %v", got, want)
	}
}

func TestPartialCouponTailHolds(t *testing.T) {
	// Theorem 8: the (1-δ)-quantile of draws must sit below the bound.
	rng := hash.NewRNG(3)
	const r, n, trials = 40, 30, 2000
	const delta = 0.05
	draws := make([]int, trials)
	for i := 0; i < trials; i++ {
		draws[i] = couponTrial(rng, r, n)
	}
	sort.Ints(draws)
	q := draws[int(float64(trials)*(1-delta))]
	bound := PartialCouponTail(r, n, delta)
	if float64(q) > bound {
		t.Fatalf("empirical 95th pct %d exceeds Theorem 8 bound %v", q, bound)
	}
	// The bound should not be absurdly loose either (within 4x of mean).
	if bound > 4*PartialCouponMean(r, n)+100 {
		t.Fatalf("bound %v implausibly loose", bound)
	}
	if !math.IsInf(PartialCouponTail(10, 10, 0.1), 1) {
		t.Fatal("n=r must give an infinite bound (the formula divides by r-n)")
	}
}

func TestLemma4Holds(t *testing.T) {
	// After Lemma4Draws trials of probability p, at least k successes
	// occur in >= (1-δ) of runs.
	rng := hash.NewRNG(4)
	const k, trials = 20, 2000
	const p, delta = 0.1, 0.05
	n := int(math.Ceil(Lemma4Draws(k, p, delta)))
	fails := 0
	for i := 0; i < trials; i++ {
		successes := 0
		for j := 0; j < n; j++ {
			if rng.Bool(p) {
				successes++
			}
		}
		if successes < k {
			fails++
		}
	}
	if rate := float64(fails) / trials; rate > delta {
		t.Fatalf("failure rate %v exceeds delta %v at N=%d", rate, delta, n)
	}
}

func TestDoubleDixieCupHolds(t *testing.T) {
	// After DoubleDixieCupDraws draws, every coupon has >= z copies in
	// >= (1-δ) of runs.
	rng := hash.NewRNG(5)
	const k, z, trials = 10, 5, 1000
	const delta = 0.05
	n := int(math.Ceil(DoubleDixieCupDraws(k, z, delta)))
	fails := 0
	for i := 0; i < trials; i++ {
		counts := make([]int, k)
		for j := 0; j < n; j++ {
			counts[rng.Intn(k)]++
		}
		for _, c := range counts {
			if c < z {
				fails++
				break
			}
		}
	}
	if rate := float64(fails) / trials; rate > delta {
		t.Fatalf("failure rate %v exceeds delta %v at N=%d", rate, delta, n)
	}
}

func TestLemma9Holds(t *testing.T) {
	// After Lemma9Draws draws, at most ψ·K coupons remain uncollected in
	// >= (1-δ) of runs.
	rng := hash.NewRNG(6)
	const k, trials = 64, 1000
	const psi, delta = 0.125, 0.05
	n := int(math.Ceil(Lemma9Draws(k, psi, delta)))
	fails := 0
	for i := 0; i < trials; i++ {
		seen := make([]bool, k)
		for j := 0; j < n; j++ {
			seen[rng.Intn(k)] = true
		}
		missing := 0
		for _, s := range seen {
			if !s {
				missing++
			}
		}
		if float64(missing) > psi*k {
			fails++
		}
	}
	if rate := float64(fails) / trials; rate > delta {
		t.Fatalf("failure rate %v exceeds delta %v at N=%d", rate, delta, n)
	}
	if !math.IsInf(Lemma9Draws(10, 0, 0.1), 1) || !math.IsInf(Lemma9Draws(10, 0.9, 0.1), 1) {
		t.Fatal("psi outside (0, 1/2] must give an infinite bound")
	}
}

func TestTheorem1SampleComplexity(t *testing.T) {
	// With Theorem1Packets packets spread uniformly over k hops, each hop
	// receives enough samples that a median estimate from its sub-stream
	// has rank error <= eps in the vast majority of runs.
	rng := hash.NewRNG(7)
	const k = 5
	const eps = 0.1
	z := Theorem1Packets(k, eps)
	const trials = 200
	bad := 0
	for tr := 0; tr < trials; tr++ {
		// Hop streams: uniform values; PINT samples one hop per packet.
		samples := make([][]float64, k)
		for j := 0; j < z; j++ {
			h := rng.Intn(k)
			samples[h] = append(samples[h], rng.Float64())
		}
		for h := 0; h < k; h++ {
			if len(samples[h]) == 0 {
				bad++
				break
			}
			sort.Float64s(samples[h])
			med := samples[h][len(samples[h])/2]
			// True median of U[0,1) is 0.5; rank error = |med - 0.5|.
			if math.Abs(med-0.5) > eps {
				bad++
				break
			}
		}
	}
	if rate := float64(bad) / trials; rate > 0.1 {
		t.Fatalf("median failed eps=%v in %v of runs with z=%d", eps, rate, z)
	}
}

func TestTheorem3MatchesImplementation(t *testing.T) {
	// The closed form must be within a small constant of what the tested
	// multi-layer implementation achieves (coding's own test checks the
	// other direction).
	if b := Theorem3Packets(25); b < 25 || b > 25*5 {
		t.Fatalf("Theorem3Packets(25) = %v out of sanity range", b)
	}
	if Theorem3Packets(59) <= Theorem3Packets(25) {
		t.Fatal("bound must grow with k")
	}
}

func TestMorrisBitsBound(t *testing.T) {
	// Counting 2^1·k sums with 25 hops at 10% error needs only a handful
	// of bits, far below the log2(k)+q of exact counting.
	b := MorrisBitsBound(1, 25, 0.1)
	if b < 1 || b > 8 {
		t.Fatalf("MorrisBitsBound = %d, want a handful", b)
	}
	if MorrisBitsBound(1, 25, 0.01) < b {
		t.Fatal("finer eps must not need fewer bits")
	}
}
