package experiments

import (
	"math"
	"testing"

	"repro/internal/workload"
)

// tiny returns a scale small enough for unit tests (each figure seconds,
// not minutes). Bench() is used by the root bench_test.go instead.
func tiny() Scale {
	return Scale{
		HostBps:     1_000_000_000,
		TierBps:     4_000_000_000,
		SizeDivisor: 128,
		DurationNs:  15_000_000,
		Pods:        2,
		HostsPerTor: 2,
		Trials:      10,
		Seed:        7,
	}
}

func TestRunLoadBasics(t *testing.T) {
	res, err := RunLoad(LoadRunConfig{Scale: tiny(), Dist: workload.Hadoop(),
		Load: 0.4, Kind: KindHPCCPINT, MinFlows: 30})
	if err != nil {
		t.Fatal(err)
	}
	done := res.Collector.Completed()
	if len(done) < 20 {
		t.Fatalf("only %d flows completed", len(done))
	}
	sizes, slow := res.Slowdowns()
	if len(sizes) != len(slow) {
		t.Fatal("mismatched slowdown vectors")
	}
	for i, v := range slow {
		// Intra-rack flows can dip below 1 against the cross-pod ideal.
		if v < 0.01 || v > 1e5 || math.IsNaN(v) {
			t.Fatalf("flow %d slowdown %v implausible", i, v)
		}
	}
}

func TestRunLoadRenoOverheadEffect(t *testing.T) {
	run := func(ov int) float64 {
		res, err := RunLoad(LoadRunConfig{Scale: tiny(), Dist: workload.WebSearch(),
			Load: 0.7, Kind: KindReno, Overhead: ov, MinFlows: 40})
		if err != nil {
			t.Fatal(err)
		}
		return res.AvgFCT()
	}
	base, heavy := run(0), run(108)
	if math.IsNaN(base) || math.IsNaN(heavy) {
		t.Fatal("no completed flows")
	}
	// 108B on ~1000B packets is ~10% capacity loss at 70% load; allow
	// noise but the heavy run must not be meaningfully faster.
	if heavy < base*0.95 {
		t.Fatalf("108B overhead FCT %v below zero-overhead %v", heavy, base)
	}
}

func TestFig05Shapes(t *testing.T) {
	curves, err := Fig05(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 3 {
		t.Fatalf("want 3 schemes, got %d", len(curves))
	}
	for _, c := range curves {
		for i := 1; i < len(c.MissingHops); i++ {
			if c.MissingHops[i] > c.MissingHops[i-1]+1e-9 {
				t.Fatalf("%s: E[missing] increased along packets", c.Scheme)
			}
			if c.DecodeProb[i] < c.DecodeProb[i-1]-1e-9 {
				t.Fatalf("%s: decode probability decreased", c.Scheme)
			}
		}
	}
	// Hybrid must decode with fewer packets than Baseline: compare the
	// decode probability at the 100-packet mark (index of packet 96).
	idx := len(curves[0].Packets) * 96 / 200
	base, hyb := curves[0], curves[2]
	if hyb.DecodeProb[idx] < base.DecodeProb[idx] {
		t.Fatalf("hybrid P(dec)@%dpkts %v below baseline %v",
			hyb.Packets[idx], hyb.DecodeProb[idx], base.DecodeProb[idx])
	}
	_ = Fig05Table(curves).String()
}

func TestCodingMediansTable(t *testing.T) {
	tab, err := CodingMedians(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("want 5 schemes, got %d", len(tab.Rows))
	}
	_ = tab.String()
}

func TestFig09HadoopMedian(t *testing.T) {
	series, err := Fig09(tiny(), Fig09Panel{Workload: "hadoop", Quantile: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 { // b=8, b=8 sketched, b=4, b=4 sketched
		t.Fatalf("want 4 series, got %d", len(series))
	}
	byName := map[string][]LatencyPoint{}
	for _, s := range series {
		byName[s.Name] = s.Points
		for _, p := range s.Points {
			if math.IsNaN(p.RelErr) || p.RelErr < 0 {
				t.Fatalf("%s: bad error %v at x=%d", s.Name, p.RelErr, p.X)
			}
		}
	}
	// The compression floor: b=4 (coarse) must end with larger error than
	// b=8 at the largest sample size.
	b8 := byName["PINT (b=8)"]
	b4 := byName["PINT (b=4)"]
	if b4[len(b4)-1].RelErr <= b8[len(b8)-1].RelErr {
		t.Fatalf("b=4 floor %v not above b=8 floor %v",
			b4[len(b4)-1].RelErr, b8[len(b8)-1].RelErr)
	}
}

func TestFig09SketchRow(t *testing.T) {
	series, err := Fig09(tiny(), Fig09Panel{Workload: "hadoop", Quantile: 0.5, BySketch: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 { // only the sketched variants
		t.Fatalf("want 2 series, got %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 6 {
			t.Fatalf("%s: %d points, want 6", s.Name, len(s.Points))
		}
	}
}

func TestFig10FatTree(t *testing.T) {
	points, err := Fig10(tiny(), TopoFatTree)
	if err != nil {
		t.Fatal(err)
	}
	byScheme := map[string]map[int]PathPoint{}
	for _, p := range points {
		if byScheme[p.Scheme] == nil {
			byScheme[p.Scheme] = map[int]PathPoint{}
		}
		byScheme[p.Scheme][p.PathLen] = p
		if p.Mean <= 0 || p.P99 < p.Mean {
			t.Fatalf("%s l=%d: mean %v p99 %v inconsistent", p.Scheme, p.PathLen, p.Mean, p.P99)
		}
	}
	// The paper's headline ordering at D=5: PINT 2x(b=8) needs far fewer
	// packets than PPM and AMS2.
	l := 5
	pint := byScheme["PINT 2x(b=8)"][l].Mean
	ppm := byScheme["PPM"][l].Mean
	ams := byScheme["AMS2 (m=5)"][l].Mean
	if pint*2 > ppm || pint*2 > ams {
		t.Fatalf("PINT %v not clearly below PPM %v / AMS2 %v", pint, ppm, ams)
	}
	// And b=1 still beats the baselines.
	b1 := byScheme["PINT (b=1)"][l].Mean
	if b1 >= ppm {
		t.Fatalf("PINT b=1 %v not below PPM %v", b1, ppm)
	}
	_ = Fig10Table(TopoFatTree, points).String()
}

func TestFig11Combined(t *testing.T) {
	rows, err := Fig11(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Name != "Baseline" || rows[1].Name != "Combined" {
		t.Fatalf("unexpected rows %+v", rows)
	}
	for _, r := range rows {
		if r.MeanSlowdown < 0.9 || math.IsNaN(r.MeanSlowdown) {
			t.Fatalf("%s: slowdown %v implausible", r.Name, r.MeanSlowdown)
		}
	}
	if rows[1].PathDecodedFlows == 0 {
		t.Fatal("combined run decoded no paths")
	}
	if rows[0].PathDecodedFlows == 0 {
		t.Fatal("baseline run decoded no paths")
	}
	_ = Fig11Table(rows).String()
}

func TestCollectionOverhead(t *testing.T) {
	stats, err := CollectionOverhead(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("want INT and PINT rows, got %d", len(stats))
	}
	intRow, pintRow := stats[0], stats[1]
	if intRow.Reports == 0 || pintRow.Reports == 0 {
		t.Fatal("no reports observed")
	}
	if !pintRow.FixedSize {
		t.Fatal("PINT reports must be fixed-size")
	}
	if intRow.FixedSize {
		t.Fatal("INT reports over mixed path lengths cannot be fixed-size")
	}
	if pintRow.MeanBytes >= intRow.MeanBytes {
		t.Fatalf("PINT mean %v not below INT mean %v",
			pintRow.MeanBytes, intRow.MeanBytes)
	}
	_ = CollectionTable(stats).String()
}

func TestTableRendering(t *testing.T) {
	tab := Table{Title: "t", Columns: []string{"a", "bb"},
		Rows: [][]string{{"1", "2"}, {"333", "4"}}}
	s := tab.String()
	if len(s) == 0 {
		t.Fatal("empty rendering")
	}
	if F(math.NaN()) != "-" {
		t.Fatal("NaN must render as dash")
	}
	if F(0.5) != "0.500" || F(1234) != "1234" {
		t.Fatalf("float formatting: %s %s", F(0.5), F(1234))
	}
}

func TestDecileEdges(t *testing.T) {
	edges := decileEdges(workload.Hadoop(), 1)
	if len(edges) != 10 {
		t.Fatalf("%d edges", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] < edges[i-1] {
			t.Fatal("edges not sorted")
		}
	}
	if edges[4] != 699 {
		t.Fatalf("hadoop median edge %d, want 699", edges[4])
	}
}

func TestPercentileSlowdownByBin(t *testing.T) {
	sizes := []int64{10, 20, 20, 300}
	slow := []float64{1, 2, 4, 8}
	out := PercentileSlowdownByBin(sizes, slow, []int64{15, 250, 1000}, 0.95)
	if out[0] != 1 {
		t.Fatalf("bin0 %v", out[0])
	}
	if out[1] != 4 {
		t.Fatalf("bin1 %v, want 4 (p95 of {2,4})", out[1])
	}
	if out[2] != 8 {
		t.Fatalf("bin2 %v", out[2])
	}
}

func TestScaleValidate(t *testing.T) {
	for _, s := range []Scale{Quick(), Bench(), Paper(), tiny()} {
		if err := s.Validate(); err != nil {
			t.Fatalf("stock scale rejected: %v", err)
		}
	}
	bad := Bench()
	bad.Shards = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative Shards accepted")
	}
	bad.Shards = MaxShards + 1
	if err := bad.Validate(); err == nil {
		t.Fatal("oversized Shards accepted")
	}
	bad = Bench()
	bad.Trials = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero Trials accepted")
	}
	if (Scale{Shards: 0}).ShardCount() != 1 || (Scale{Shards: 4}).ShardCount() != 4 {
		t.Fatal("ShardCount normalization wrong")
	}
}

func TestRunLoadMultiTenant(t *testing.T) {
	res, err := RunLoad(LoadRunConfig{Scale: tiny(), Kind: KindHPCCPINT,
		Tenants: []Tenant{
			{Name: "hadoop", Dist: workload.Hadoop(), Load: 0.25, MinFlows: 20},
			{Name: "websearch", Dist: workload.WebSearch(), Load: 0.25, MinFlows: 20},
		}})
	if err != nil {
		t.Fatal(err)
	}
	if res.TenantOf == nil {
		t.Fatal("multi-tenant run returned no tenant map")
	}
	sizes, slow := res.SlowdownsByTenant(2)
	if len(sizes) != 2 || len(slow) != 2 {
		t.Fatalf("per-tenant split shape %d/%d", len(sizes), len(slow))
	}
	for ti := range sizes {
		if len(sizes[ti]) < 5 {
			t.Fatalf("tenant %d completed only %d flows", ti, len(sizes[ti]))
		}
	}
	// Tenant IDs must not collide (the high-byte tag keeps generators apart).
	seen := map[uint64]bool{}
	for id := range res.TenantOf {
		if seen[id] {
			t.Fatalf("flow ID %d duplicated", id)
		}
		seen[id] = true
	}
}

func TestFig10AtLengthMatchesFig10(t *testing.T) {
	s := tiny()
	whole, err := Fig10(s, TopoFatTree)
	if err != nil {
		t.Fatal(err)
	}
	var stitched []PathPoint
	lengths, err := Fig10Lengths(TopoFatTree)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lengths {
		pts, err := Fig10AtLength(s, TopoFatTree, l)
		if err != nil {
			t.Fatal(err)
		}
		stitched = append(stitched, pts...)
	}
	if len(whole) != len(stitched) {
		t.Fatalf("point counts differ: %d vs %d", len(whole), len(stitched))
	}
	for i := range whole {
		if whole[i] != stitched[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, whole[i], stitched[i])
		}
	}
}
