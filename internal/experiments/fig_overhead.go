package experiments

import (
	"fmt"

	"repro/internal/workload"
)

// OverheadPoint is one x-position of Figs 1 and 2.
type OverheadPoint struct {
	OverheadBytes  int
	Load           float64
	NormFCT        float64 // avg FCT / avg FCT at zero overhead
	NormGoodput    float64 // long-flow goodput / zero-overhead goodput
	CompletedFlows int
}

// Fig01_02 reproduces Figures 1 and 2: a 5-hop data-center topology runs a
// web-search workload over the Reno-like transport while the per-packet
// overhead sweeps over the INT-representative sizes 28..108B; average FCT
// and long-flow goodput are normalized to the zero-overhead run. The
// paper's qualitative claims: FCT grows and goodput falls monotonically
// in overhead, and the 70% load curves move much more than the 30% ones.
func Fig01_02(s Scale) ([]OverheadPoint, error) {
	overheads := []int{0, 28, 48, 68, 88, 108}
	loads := []float64{0.3, 0.7}
	var out []OverheadPoint
	for _, load := range loads {
		var baseFCT, baseGP float64
		for _, ov := range overheads {
			res, err := RunLoad(LoadRunConfig{
				Scale:    s,
				Dist:     workload.WebSearch(),
				Load:     load,
				Kind:     KindReno,
				Overhead: ov,
				MinFlows: 50,
			})
			if err != nil {
				return nil, err
			}
			fct := res.AvgFCT()
			// "Long" flows: the top ~20% of the scaled distribution.
			longThr := int64(workload.WebSearch().Scaled(s.SizeDivisor).Quantile(0.8))
			gp := res.AvgGoodputLong(longThr)
			if ov == 0 {
				baseFCT, baseGP = fct, gp
			}
			out = append(out, OverheadPoint{
				OverheadBytes:  ov,
				Load:           load,
				NormFCT:        fct / baseFCT,
				NormGoodput:    gp / baseGP,
				CompletedFlows: len(res.Collector.Completed()),
			})
		}
	}
	return out, nil
}

// Fig01_02Table renders the sweep like the paper's two panels.
func Fig01_02Table(points []OverheadPoint) Table {
	t := Table{
		Title:   "Fig 1+2: normalized FCT and long-flow goodput vs per-packet overhead",
		Columns: []string{"load", "overheadB", "normFCT", "normGoodput", "flows"},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", p.Load*100),
			fmt.Sprintf("%d", p.OverheadBytes),
			F(p.NormFCT), F(p.NormGoodput),
			fmt.Sprintf("%d", p.CompletedFlows),
		})
	}
	return t
}
