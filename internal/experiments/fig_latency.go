package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/netsim"
	"repro/internal/pipeline"
	"repro/internal/sketch"
	"repro/internal/wire"
	"repro/internal/workload"
)

// LatencyPoint is one x-position of a Fig 9 panel.
type LatencyPoint struct {
	X      int     // sample size (packets) or sketch size (bytes)
	RelErr float64 // relative error, percent
}

// LatencySeries is one curve of a Fig 9 panel.
type LatencySeries struct {
	Name   string // e.g. "PINT (b=8)", "PINTS (b=4)"
	Points []LatencyPoint
}

// Fig09Panel identifies one of the paper's six panels.
type Fig09Panel struct {
	Workload string  // "websearch" or "hadoop"
	Quantile float64 // 0.5 (median) or 0.99 (tail)
	BySketch bool    // false: error vs sample size; true: error vs sketch bytes
}

// Fig09 reproduces Figure 9: the relative error of PINT's per-hop latency
// quantile estimates, as a function of the number of packets sampled from
// a flow (first row) and of the per-hop sketch size in bytes (second row,
// 500-packet samples), for bit budgets b=4 and b=8, with (PINTS) and
// without sketches. Ground-truth hop-latency streams come from a loaded
// simulation of the corresponding workload. The paper's claims: error
// decreases with packets until it hits the value-compression floor, and
// small (~100B) sketches cost little accuracy.
func Fig09(s Scale, panel Fig09Panel) ([]LatencySeries, error) {
	streams, err := collectHopStreams(s, panel.Workload)
	if err != nil {
		return nil, err
	}
	k := len(streams)
	// Ground truth per hop.
	truth := make([]float64, k)
	for h := range streams {
		truth[h] = sketch.ExactQuantile(streams[h], panel.Quantile)
	}
	rng := hash.NewRNG(s.Seed + 9)

	var out []LatencySeries
	for _, b := range []int{8, 4} {
		for _, sk := range []bool{false, true} {
			if panel.BySketch && !sk {
				continue // the sketch-size row only has sketched variants
			}
			name := fmt.Sprintf("PINT (b=%d)", b)
			if sk {
				name = fmt.Sprintf("PINTS (b=%d)", b)
			}
			series := LatencySeries{Name: name}
			if panel.BySketch {
				for _, bytes := range []int{50, 100, 150, 200, 250, 300} {
					e, err := latencyTrial(streams, truth, panel.Quantile, b, 500,
						sketchParamFor(bytes, b), s.Trials, s.Shards, rng)
					if err != nil {
						return nil, err
					}
					series.Points = append(series.Points, LatencyPoint{X: bytes, RelErr: e})
				}
			} else {
				items := 0
				if sk {
					items = sketchParamFor(100, b) // 100-digest sketches (first row)
				}
				for _, z := range []int{100, 200, 400, 600, 800, 1000} {
					e, err := latencyTrial(streams, truth, panel.Quantile, b, z,
						items, s.Trials, s.Shards, rng)
					if err != nil {
						return nil, err
					}
					series.Points = append(series.Points, LatencyPoint{X: z, RelErr: e})
				}
			}
			out = append(out, series)
		}
	}
	return out, nil
}

// Fig09PanelTitle names one panel the way the paper's grid does.
func Fig09PanelTitle(p Fig09Panel) string {
	axis := "sample size [pkts]"
	if p.BySketch {
		axis = "sketch size [bytes]"
	}
	return fmt.Sprintf("Fig 9: %s q=%.2f, rel. error vs %s", p.Workload, p.Quantile, axis)
}

// Fig09Table renders one panel's series side by side (one row per
// x-position, one column per PINT variant).
func Fig09Table(p Fig09Panel, series []LatencySeries) Table {
	t := Table{Title: Fig09PanelTitle(p), Columns: []string{"x"}}
	for _, sr := range series {
		t.Columns = append(t.Columns, sr.Name)
	}
	if len(series) == 0 {
		return t
	}
	for i := range series[0].Points {
		row := []string{fmt.Sprintf("%d", series[0].Points[i].X)}
		for _, sr := range series {
			row = append(row, F(sr.Points[i].RelErr)+"%")
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// sketchParamFor converts a byte budget into a KLL accuracy parameter,
// assuming items are b-bit digests and KLL retains ~3k items.
func sketchParamFor(bytes, b int) int {
	items := bytes * 8 / b
	k := items / 3
	if k < 8 {
		k = 8
	}
	return k
}

// latencyTrial runs `trials` independent PINT samplings of z packets over
// the per-hop streams and returns the mean relative quantile error (%)
// across hops and trials. Packets run through the compiled batch pipeline:
// EncodeHopBatch per hop, then batched recording — sharded across workers
// when shards > 1 (the answers are bit-identical either way).
func latencyTrial(streams [][]float64, truth []float64, phi float64, b, z, sketchItems, trials, shards int, rng *hash.RNG) (float64, error) {
	k := len(streams)
	var errSum float64
	var errN int
	pkts := make([]core.PacketDigest, z)
	vals := make([]core.HopValues, z)
	for tr := 0; tr < trials; tr++ {
		q, err := core.NewLatencyQuery("lat", b, epsFor(b), 1, hash.Seed(rng.Uint64()))
		if err != nil {
			return 0, err
		}
		eng, err := core.Compile([]core.Query{q}, b, hash.Seed(rng.Uint64()))
		if err != nil {
			return 0, err
		}
		base := hash.Seed(rng.Uint64())
		flow := core.FlowKey(1)
		for j := range pkts {
			pkts[j] = core.PacketDigest{Flow: flow, PktID: rng.Uint64(), PathLen: k}
		}
		// Packet j consumes sample j of every hop's stream (every hop
		// observed the packet; only the reservoir winner's value survived).
		for hop := 1; hop <= k; hop++ {
			st := streams[hop-1]
			for j := range vals {
				vals[j].LatencyNs = uint64(st[j%len(st)])
			}
			eng.EncodeHopBatch(hop, pkts, vals)
		}
		rec, err := recordPackets(eng, pkts, sketchItems, shards, base, flow)
		if err != nil {
			return 0, err
		}
		for hop := 1; hop <= k; hop++ {
			est, err := rec.LatencyQuantile(q, flow, hop, phi)
			if err != nil {
				continue // hop got no samples this trial
			}
			if truth[hop-1] > 0 {
				errSum += math.Abs(est-truth[hop-1]) / truth[hop-1] * 100
				errN++
			}
		}
	}
	if errN == 0 {
		return math.NaN(), nil
	}
	return errSum / float64(errN), nil
}

// recordPackets ships an encoded batch through the wire format (the
// switch→collector transfer) and ingests the decoded copy through the
// sharded sink — the production collector stack on every Fig-harness run,
// serial included (shards <= 1 runs one worker). It returns the Recording
// that owns `flow`'s state; answers are bit-identical to recording the
// in-memory batch directly, for any shard count.
func recordPackets(eng *core.Engine, pkts []core.PacketDigest, sketchItems, shards int, base hash.Seed, flow core.FlowKey) (*core.Recording, error) {
	rx, _, err := wire.Roundtrip(nil, nil, pkts)
	if err != nil {
		return nil, err
	}
	if shards < 1 {
		shards = 1
	}
	sink, err := pipeline.NewSink(eng, pipeline.Config{
		Shards: shards, SketchItems: sketchItems, Base: base})
	if err != nil {
		return nil, err
	}
	sink.Ingest(rx)
	if err := sink.Close(); err != nil {
		return nil, err
	}
	return sink.Recording(flow), nil
}

// epsFor picks the compression error so the b-bit code space covers the
// nanosecond latency range (up to ~10^8 ns): (1+eps)^(2^b) >= 1e8.
func epsFor(b int) float64 {
	switch {
	case b >= 16:
		return 0.0025
	case b >= 8:
		return 0.04
	default:
		return 0.9 // 4 bits: very coarse, the paper's high-error floor
	}
}

// collectHopStreams runs a loaded simulation and harvests per-hop latency
// streams for 5-switch-hop (cross-pod) traffic, concatenated across flows
// into one logical flow per hop position — the statistics a dynamic
// per-flow query would see.
func collectHopStreams(s Scale, wl string) ([][]float64, error) {
	var dist *workload.Dist
	switch wl {
	case "websearch":
		dist = workload.WebSearch()
	case "hadoop":
		dist = workload.Hadoop()
	default:
		return nil, fmt.Errorf("experiments: unknown workload %q", wl)
	}
	const k = 5
	streams := make([][]float64, k)

	// Piggyback on RunLoad's network by replicating its construction with
	// an extra hook. Cheaper: run KindHPCCPINT (keeps queues interesting)
	// and capture hop latencies via OnHopLatency before starting flows.
	res, err := runLoadWithHook(LoadRunConfig{Scale: s, Dist: dist, Load: 0.5,
		Kind: KindHPCCPINT, MinFlows: 100},
		func(pkt *netsim.Packet, hop int, latNs int64) {
			if hop >= 1 && hop <= k {
				streams[hop-1] = append(streams[hop-1], float64(latNs))
			}
		})
	if err != nil {
		return nil, err
	}
	_ = res
	for h := range streams {
		if len(streams[h]) < 50 {
			return nil, fmt.Errorf("experiments: hop %d collected only %d latencies",
				h+1, len(streams[h]))
		}
	}
	return streams, nil
}
