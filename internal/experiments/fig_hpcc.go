package experiments

import (
	"fmt"
	"math"

	"repro/internal/workload"
)

// GainPoint is one x-position of Fig 7(a).
type GainPoint struct {
	Load        float64
	GoodputINT  float64 // bps, long flows
	GoodputPINT float64
	GainPercent float64
}

// Fig07a reproduces Figure 7(a): the relative long-flow goodput
// improvement of HPCC(PINT) over HPCC(INT) as network load grows. The
// paper's claim: the gain is positive and grows with load (71% at 70% in
// their setting) because PINT's byte savings matter most when residual
// capacity is scarce.
func Fig07a(s Scale) ([]GainPoint, error) {
	loads := []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7}
	longThr := int64(workload.WebSearch().Scaled(s.SizeDivisor).Quantile(0.8))
	var out []GainPoint
	for _, load := range loads {
		intRes, err := RunLoad(LoadRunConfig{Scale: s, Dist: workload.WebSearch(),
			Load: load, Kind: KindHPCCINT, MinFlows: 50})
		if err != nil {
			return nil, err
		}
		pintRes, err := RunLoad(LoadRunConfig{Scale: s, Dist: workload.WebSearch(),
			Load: load, Kind: KindHPCCPINT, MinFlows: 50})
		if err != nil {
			return nil, err
		}
		gi := intRes.AvgGoodputLong(longThr)
		gp := pintRes.AvgGoodputLong(longThr)
		out = append(out, GainPoint{
			Load:        load,
			GoodputINT:  gi,
			GoodputPINT: gp,
			GainPercent: (gp - gi) / gi * 100,
		})
	}
	return out, nil
}

// Fig07aTable renders the goodput-gain sweep.
func Fig07aTable(points []GainPoint) Table {
	t := Table{Title: "Fig 7a: long-flow goodput, HPCC(PINT) vs HPCC(INT)",
		Columns: []string{"load", "INT bps", "PINT bps", "gain%"}}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", p.Load*100),
			F(p.GoodputINT), F(p.GoodputPINT), F(p.GainPercent),
		})
	}
	return t
}

// SlowdownSeries is one curve of Fig 7(b)/(c) or Fig 8.
type SlowdownSeries struct {
	Name     string
	BinEdges []int64   // decile upper edges (scaled workload bytes)
	P95      []float64 // 95th-percentile slowdown per bin
}

// Fig07bc reproduces Figures 7(b) and 7(c): 95th-percentile slowdown as a
// function of flow size at 50% load, HPCC(INT) vs HPCC(PINT), for the
// web-search and Hadoop workloads. The paper's claims: the curves are
// comparable overall, with PINT better on long flows (bandwidth saving)
// and slightly worse on short ones.
func Fig07bc(s Scale, dist *workload.Dist) ([]SlowdownSeries, error) {
	edges := decileEdges(dist, s.SizeDivisor)
	var out []SlowdownSeries
	for _, kind := range []struct {
		name string
		k    TransportKind
	}{{"HPCC(INT)", KindHPCCINT}, {"HPCC(PINT)", KindHPCCPINT}} {
		res, err := RunLoad(LoadRunConfig{Scale: s, Dist: dist, Load: 0.5,
			Kind: kind.k, MinFlows: 200})
		if err != nil {
			return nil, err
		}
		sizes, slow := res.Slowdowns()
		out = append(out, SlowdownSeries{
			Name:     kind.name,
			BinEdges: edges,
			P95:      PercentileSlowdownByBin(sizes, slow, edges, 0.95),
		})
	}
	return out, nil
}

// Fig08 reproduces Figure 8: PINT-based HPCC running the congestion query
// on only a p-fraction of packets, p ∈ {1, 1/16, 1/256}. The paper's
// claims: p=1/16 is nearly indistinguishable from p=1; p=1/256 degrades
// short flows (feedback slower than an RTT).
func Fig08(s Scale, dist *workload.Dist) ([]SlowdownSeries, error) {
	edges := decileEdges(dist, s.SizeDivisor)
	var out []SlowdownSeries
	for _, p := range []float64{1, 1.0 / 16, 1.0 / 256} {
		res, err := RunLoad(LoadRunConfig{Scale: s, Dist: dist, Load: 0.5,
			Kind: KindHPCCPINT, PintP: p, MinFlows: 200})
		if err != nil {
			return nil, err
		}
		sizes, slow := res.Slowdowns()
		out = append(out, SlowdownSeries{
			Name:     fmt.Sprintf("p=1/%d", int(math.Round(1/p))),
			BinEdges: edges,
			P95:      PercentileSlowdownByBin(sizes, slow, edges, 0.95),
		})
	}
	return out, nil
}

// SlowdownTable renders slowdown curves side by side.
func SlowdownTable(title string, series []SlowdownSeries) Table {
	t := Table{Title: title, Columns: []string{"size<="}}
	for _, sr := range series {
		t.Columns = append(t.Columns, sr.Name)
	}
	for i := range series[0].BinEdges {
		row := []string{fmt.Sprintf("%d", series[0].BinEdges[i])}
		for _, sr := range series {
			row = append(row, F(sr.P95[i]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// DecileEdges exposes the scaled workload's decile boundaries to the
// scenario registry (the slowdown figures' x-axis bins).
func DecileEdges(dist *workload.Dist, divisor float64) []int64 {
	return decileEdges(dist, divisor)
}

// decileEdges returns the scaled workload's decile boundaries — the
// paper's x-axis ticks ("10% of the flows between consecutive marks").
func decileEdges(dist *workload.Dist, divisor float64) []int64 {
	d := dist
	if divisor > 1 {
		d = dist.Scaled(divisor)
	}
	edges := make([]int64, 10)
	for i := 1; i <= 10; i++ {
		edges[i-1] = int64(math.Ceil(d.Quantile(float64(i) / 10)))
	}
	return edges
}
