// Package experiments holds the building blocks of the PINT paper's
// evaluation (§2 and §6): the loaded-network simulation harness, the
// per-figure trial units (decomposed along each figure's independent
// axis — loads, schemes, panels, path lengths, plan arms), and the table
// renderers. The scenario registry (internal/scenario) assembles these
// units into declarative scenarios and runs them through its parallel
// deterministic trial runner; the FigXX convenience functions remain as
// the serial reference implementations and are bit-identical to the
// registry's output.
//
// A Scale knob trades fidelity for runtime: benches run at Scale's
// defaults (seconds per figure), while cmd/pintfig exposes larger runs.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/hash"
	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/workload"
)

// Scale bundles the knobs that shrink paper-sized experiments to
// bench-sized ones without changing their structure.
type Scale struct {
	// HostBps / TierBps are the access and fabric link rates (paper:
	// 100G/400G; bench default 1G/4G).
	HostBps int64
	TierBps int64
	// SizeDivisor shrinks workload flow sizes so flows complete within
	// DurationNs.
	SizeDivisor float64
	// DurationNs is the flow-arrival horizon; the simulation drains for
	// 3x this before collecting.
	DurationNs int64
	// Pods/HostsPerTor shape the leaf-spine instance.
	Pods        int
	HostsPerTor int
	// Trials for per-trial experiments (Fig 5/10).
	Trials int
	// Seed drives all randomness.
	Seed uint64
	// Shards sets the worker count of every scenario's recording sink:
	// wherever an experiment records digests (Fig 9's latency trials,
	// Fig 11's delivery tap, the engine path trials, the non-paper
	// scenarios), the stream runs through the sharded batch pipeline
	// (internal/pipeline) with this many workers. Answers are
	// bit-identical for any value, so figures do not change; 0 means 1.
	// Experiments with no recording path (pure transport or coding
	// studies) have nothing to shard. Validate rejects invalid values —
	// they are never silently ignored.
	Shards int
}

// MaxShards bounds Scale.Shards: beyond this, per-shard state dominates
// and the configuration is almost certainly a typo.
const MaxShards = 256

// Validate rejects scales no experiment can run: the scenario runner and
// the CLIs call it up front so a bad knob fails loudly instead of being
// silently ignored by some figures and honored by others.
func (s Scale) Validate() error {
	switch {
	case s.HostBps <= 0 || s.TierBps <= 0:
		return fmt.Errorf("experiments: link rates must be positive (host %d, tier %d)", s.HostBps, s.TierBps)
	case s.SizeDivisor < 1:
		return fmt.Errorf("experiments: SizeDivisor %v below 1", s.SizeDivisor)
	case s.DurationNs <= 0:
		return fmt.Errorf("experiments: DurationNs %d not positive", s.DurationNs)
	case s.Pods < 1 || s.HostsPerTor < 1:
		return fmt.Errorf("experiments: topology shape %dx%d invalid", s.Pods, s.HostsPerTor)
	case s.Trials < 1:
		return fmt.Errorf("experiments: Trials %d below 1", s.Trials)
	case s.Shards < 0 || s.Shards > MaxShards:
		return fmt.Errorf("experiments: Shards %d out of [0,%d]", s.Shards, MaxShards)
	}
	return nil
}

// ShardCount returns the effective recording-sink worker count (Shards,
// with 0 meaning serial-in-a-worker).
func (s Scale) ShardCount() int {
	if s.Shards < 1 {
		return 1
	}
	return s.Shards
}

// Bench returns the scale used by `go test -bench` — small enough for a
// complete suite run in minutes.
func Bench() Scale {
	return Scale{
		HostBps:     1_000_000_000,
		TierBps:     4_000_000_000,
		SizeDivisor: 64,
		DurationNs:  60_000_000, // 60 ms of arrivals
		Pods:        2,
		HostsPerTor: 4,
		Trials:      50,
		Seed:        1,
	}
}

// Quick returns the smallest sensible scale: a smoke-test configuration
// (cmd/pintfig -scale quick) that exercises every figure's full code path
// in seconds, for CI and bit-rot checks rather than for fidelity.
func Quick() Scale {
	s := Bench()
	s.SizeDivisor = 256
	s.DurationNs = 10_000_000 // 10 ms of arrivals
	s.Trials = 3
	return s
}

// Paper returns a scale closer to the paper's setup (minutes to hours per
// figure; used by cmd/pintfig -scale paper).
func Paper() Scale {
	return Scale{
		HostBps:     25_000_000_000, // 25G in place of 100G: 4x faster sim
		TierBps:     100_000_000_000,
		SizeDivisor: 4,
		DurationNs:  100_000_000,
		Pods:        5,
		HostsPerTor: 16,
		Trials:      2000,
		Seed:        1,
	}
}

// BaseRTTNs estimates the network's base RTT for a cross-pod path at this
// scale: per direction, 6 serializations of a 1000B packet (host + 5
// switches) plus propagation; ACKs are small, so ~1.2x one-way covers it.
func (s Scale) BaseRTTNs() int64 {
	ser := int64(1000*8) * 1_000_000_000 / s.HostBps
	oneWay := 6*ser + 6*1000
	return 2 * oneWay
}

// TransportKind selects the protocol an experiment drives.
type TransportKind int

const (
	// KindReno runs the TCP-Reno-like transport with fixed ExtraBytes
	// overhead (the §2 study).
	KindReno TransportKind = iota
	// KindHPCCINT runs HPCC over classic INT.
	KindHPCCINT
	// KindHPCCPINT runs HPCC over PINT digests.
	KindHPCCPINT
)

// Tenant describes one traffic class of a multi-tenant run: its own flow
// size distribution and offered load, sharing the network (and transport
// kind) with the other tenants.
type Tenant struct {
	Name     string
	Dist     *workload.Dist
	Load     float64
	MinFlows int
}

// LoadRunConfig drives one loaded-network simulation.
type LoadRunConfig struct {
	Scale    Scale
	Dist     *workload.Dist
	Load     float64
	Kind     TransportKind
	Overhead int     // Reno: fixed per-packet bytes
	PintP    float64 // HPCC-PINT: fraction of packets carrying the digest (0 = 1.0)
	PintBits int     // HPCC-PINT: digest width (default 8)
	MinFlows int     // keep generating until at least this many flows arrive
	// Tenants, when non-empty, replaces the single Dist/Load/MinFlows
	// workload with one Poisson arrival process per tenant (independent
	// derived seeds), merged by arrival time onto the shared fabric.
	// LoadRunResult.TenantOf then maps each flow ID to its tenant index.
	Tenants []Tenant

	// hopHook, when set, observes every data packet's per-switch latency
	// (hop is 1-based). Used by the Fig 9 harness.
	hopHook func(pkt *netsim.Packet, hop int, latNs int64)
	// deliverHook, when set, observes every packet arriving at a host.
	// Used by the collection-overhead harness.
	deliverHook func(h *netsim.HostNode, pkt *netsim.Packet)
}

// runLoadWithHook is RunLoad with a per-hop latency observer attached.
func runLoadWithHook(cfg LoadRunConfig, hook func(pkt *netsim.Packet, hop int, latNs int64)) (*LoadRunResult, error) {
	cfg.hopHook = hook
	return RunLoad(cfg)
}

// RunLoadWithHopHook exposes the hop-latency observer to the scenario
// registry: hook sees every data packet's (packet, 1-based hop, latency).
func RunLoadWithHopHook(cfg LoadRunConfig, hook func(pkt *netsim.Packet, hop int, latNs int64)) (*LoadRunResult, error) {
	return runLoadWithHook(cfg, hook)
}

// LoadRunResult aggregates one run.
type LoadRunResult struct {
	Collector *transport.Collector
	Net       *netsim.Network
	BaseRTTNs int64
	HostBps   int64
	// TenantOf maps flow IDs to LoadRunConfig.Tenants indices; nil for
	// single-workload runs.
	TenantOf map[uint64]int
}

// RunLoad builds the leaf-spine network, schedules Poisson arrivals for
// the configured duration, runs the simulation to drain, and returns the
// completed-flow statistics.
func RunLoad(cfg LoadRunConfig) (*LoadRunResult, error) {
	s := cfg.Scale
	g, err := topology.LeafSpine(s.Pods, 2, 2, s.HostsPerTor, 2)
	if err != nil {
		return nil, err
	}
	sim := netsim.NewSim()
	buf := int(32 << 20 / (100_000_000_000 / s.HostBps)) // scale the 32MB buffer
	if buf < 64_000 {
		buf = 64_000
	}
	net, err := netsim.Build(sim, g, netsim.BuildOptions{
		HostLink:     netsim.LinkSpec{Bps: s.HostBps, PropNs: 1000, BufBytes: buf},
		TierLink:     netsim.LinkSpec{Bps: s.TierBps, PropNs: 1000, BufBytes: buf},
		ValuesPerHop: 3, // HPCC's three INT values
	})
	if err != nil {
		return nil, err
	}
	baseRTT := s.BaseRTTNs()
	if cfg.deliverHook != nil {
		net.OnDeliver = cfg.deliverHook
	}
	if cfg.hopHook != nil {
		hook := cfg.hopHook
		net.OnHopLatency = func(sw *netsim.SwitchNode, pkt *netsim.Packet, lat int64) {
			if !pkt.Ack {
				hook(pkt, pkt.Hops+1, lat)
			}
		}
	}

	var pu *transport.PINTUtilization
	switch cfg.Kind {
	case KindHPCCINT:
		transport.AttachINTHook(net)
	case KindHPCCPINT:
		bits := cfg.PintBits
		if bits == 0 {
			bits = 8
		}
		pu, err = transport.AttachPINTHook(net, baseRTT, bits)
		if err != nil {
			return nil, err
		}
	}

	var flows []workload.Flow
	var tenantOf map[uint64]int
	if len(cfg.Tenants) > 0 {
		flows, tenantOf, err = tenantFlows(g.Hosts(), cfg.Tenants, s)
		if err != nil {
			return nil, err
		}
	} else {
		dist := cfg.Dist
		if s.SizeDivisor > 1 {
			dist = dist.Scaled(s.SizeDivisor)
		}
		gen, err := workload.NewGenerator(g.Hosts(), dist, cfg.Load, s.HostBps, hash.NewRNG(s.Seed))
		if err != nil {
			return nil, err
		}
		flows = gen.GenerateUntil(s.DurationNs)
		for len(flows) < cfg.MinFlows {
			f := gen.Next()
			flows = append(flows, f)
		}
	}

	col := &transport.Collector{}
	sel := hash.NewGlobal(hash.Seed(s.Seed).Derive(0x5E1))
	for _, f := range flows {
		f := f
		stats := &transport.FlowStats{ID: f.ID, Bytes: f.Bytes, StartNs: f.Start}
		col.Add(stats)
		sim.At(f.Start, func() {
			switch cfg.Kind {
			case KindReno:
				rc := transport.DefaultRenoConfig()
				rc.ExtraBytes = cfg.Overhead
				rc.InitRTO = 8 * baseRTT
				_, err := transport.StartReno(net, f.Src, f.Dst, stats, rc)
				if err != nil {
					panic(err)
				}
			case KindHPCCINT:
				hc := transport.DefaultHPCCConfig(cfg.Scale.HostBps, baseRTT)
				hc.Mode = transport.FeedbackINT
				if _, err := transport.StartHPCC(net, f.Src, f.Dst, stats, hc); err != nil {
					panic(err)
				}
			case KindHPCCPINT:
				hc := transport.DefaultHPCCConfig(cfg.Scale.HostBps, baseRTT)
				hc.Mode = transport.FeedbackPINT
				hc.PintBits = cfg.PintBits
				if hc.PintBits == 0 {
					hc.PintBits = 8
				}
				hc.DecodeU = pu.Decode
				if cfg.PintP > 0 && cfg.PintP < 1 {
					p := cfg.PintP
					hc.SelectPkt = func(pktID uint64) bool { return sel.Act(pktID, 1, p) }
				}
				if _, err := transport.StartHPCC(net, f.Src, f.Dst, stats, hc); err != nil {
					panic(err)
				}
			}
		})
	}
	sim.Run(s.DurationNs * 4)
	return &LoadRunResult{Collector: col, Net: net, BaseRTTNs: baseRTT,
		HostBps: s.HostBps, TenantOf: tenantOf}, nil
}

// tenantFlows draws every tenant's Poisson arrivals with an independent
// derived seed, tags each flow ID with its tenant (high byte, keeping IDs
// collision-free across generators), and merges the processes by arrival
// time so the shared fabric sees one interleaved stream.
func tenantFlows(hosts []int, tenants []Tenant, s Scale) ([]workload.Flow, map[uint64]int, error) {
	var flows []workload.Flow
	tenantOf := map[uint64]int{}
	for ti, tn := range tenants {
		dist := tn.Dist
		if s.SizeDivisor > 1 {
			dist = dist.Scaled(s.SizeDivisor)
		}
		rng := hash.NewRNG(uint64(hash.Seed(s.Seed).Derive(0x7E4A00 + uint64(ti))))
		gen, err := workload.NewGenerator(hosts, dist, tn.Load, s.HostBps, rng)
		if err != nil {
			return nil, nil, fmt.Errorf("tenant %q: %w", tn.Name, err)
		}
		tf := gen.GenerateUntil(s.DurationNs)
		for len(tf) < tn.MinFlows {
			tf = append(tf, gen.Next())
		}
		for _, f := range tf {
			f.ID |= uint64(ti+1) << 56
			tenantOf[f.ID] = ti
			flows = append(flows, f)
		}
	}
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].Start != flows[j].Start {
			return flows[i].Start < flows[j].Start
		}
		return flows[i].ID < flows[j].ID
	})
	return flows, tenantOf, nil
}

// SlowdownsByTenant splits a multi-tenant run's completed-flow (size,
// slowdown) vectors per tenant index.
func (r *LoadRunResult) SlowdownsByTenant(tenants int) ([][]int64, [][]float64) {
	sizes := make([][]int64, tenants)
	slow := make([][]float64, tenants)
	for _, f := range r.Collector.Completed() {
		ti, ok := r.TenantOf[f.ID]
		if !ok {
			continue
		}
		sizes[ti] = append(sizes[ti], f.Bytes)
		slow[ti] = append(slow[ti], float64(f.FCT())/r.IdealFCT(f.Bytes))
	}
	return sizes, slow
}

// IdealFCT is the canonical slowdown denominator: line-rate transmission
// plus one (cross-pod) base RTT. Intra-rack flows can therefore report
// slowdowns below 1; comparisons between configurations share the same
// denominator, which is what Figs 7, 8 and 11 plot.
func (r *LoadRunResult) IdealFCT(bytes int64) float64 {
	return float64(bytes)*8*1e9/float64(r.HostBps) + float64(r.BaseRTTNs)
}

// Slowdowns returns each completed flow's (size, slowdown).
func (r *LoadRunResult) Slowdowns() ([]int64, []float64) {
	var sizes []int64
	var slow []float64
	for _, f := range r.Collector.Completed() {
		sizes = append(sizes, f.Bytes)
		slow = append(slow, float64(f.FCT())/r.IdealFCT(f.Bytes))
	}
	return sizes, slow
}

// AvgFCT returns the mean FCT over completed flows, in ns.
func (r *LoadRunResult) AvgFCT() float64 {
	done := r.Collector.Completed()
	if len(done) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, f := range done {
		sum += float64(f.FCT())
	}
	return sum / float64(len(done))
}

// AvgGoodputLong returns the mean goodput (bps) of completed flows of at
// least minBytes.
func (r *LoadRunResult) AvgGoodputLong(minBytes int64) float64 {
	var sum float64
	n := 0
	for _, f := range r.Collector.Completed() {
		if f.Bytes >= minBytes {
			sum += float64(f.Bytes) * 8 * 1e9 / float64(f.FCT())
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// PercentileSlowdownByBin computes the q-quantile slowdown within flow-size
// bins delimited by edges (ascending); bin i covers (edges[i-1], edges[i]].
func PercentileSlowdownByBin(sizes []int64, slow []float64, edges []int64, q float64) []float64 {
	out := make([]float64, len(edges))
	for i := range edges {
		var lo int64
		if i > 0 {
			lo = edges[i-1]
		}
		var vals []float64
		for j, sz := range sizes {
			if sz > lo && sz <= edges[i] {
				vals = append(vals, slow[j])
			}
		}
		if len(vals) == 0 {
			out[i] = math.NaN()
			continue
		}
		sort.Float64s(vals)
		idx := int(math.Ceil(q*float64(len(vals)))) - 1
		if idx < 0 {
			idx = 0
		}
		out[i] = vals[idx]
	}
	return out
}

// Table is a printable experiment result. Cells are strings, so JSON
// serialization (the scenario registry's -json output and golden files)
// is byte-stable.
type Table struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		for i, c := range r {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// F formats a float compactly for table cells.
func F(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	switch {
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}
