package experiments

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// CollectionStats quantifies §2's third overhead problem on a live
// simulation: the bandwidth the sink-to-collector path consumes and
// whether reports are fixed-size (what Confluo-style ingestion needs).
type CollectionStats struct {
	System     string
	Reports    int
	MeanBytes  float64
	FixedSize  bool
	TotalBytes int64
}

// CollectionSystems lists the compared telemetry systems in table order —
// the trial axis the scenario registry fans out over.
func CollectionSystems() []string {
	return []string{"INT (3 values/hop)", "PINT (16-bit digest)"}
}

// CollectionOverheadFor runs one telemetry system's loaded simulation and
// models the sink's report stream for every delivered data packet.
func CollectionOverheadFor(s Scale, system string) (CollectionStats, error) {
	var kind telemetry.ReportKind
	var tk TransportKind
	switch system {
	case "INT (3 values/hop)":
		kind, tk = telemetry.ReportINT, KindHPCCINT
	case "PINT (16-bit digest)":
		kind, tk = telemetry.ReportPINT, KindHPCCPINT
	default:
		return CollectionStats{}, fmt.Errorf("experiments: unknown telemetry system %q", system)
	}
	sink, err := telemetry.NewSink(kind, 3, 16)
	if err != nil {
		return CollectionStats{}, err
	}
	cfg := LoadRunConfig{Scale: s, Dist: workload.Hadoop(), Load: 0.5,
		Kind: tk, MinFlows: 100}
	if _, err := runLoadWithSink(cfg, sink); err != nil {
		return CollectionStats{}, err
	}
	return CollectionStats{
		System:     system,
		Reports:    sink.Reports,
		MeanBytes:  sink.MeanBytes(),
		FixedSize:  sink.FixedSize(),
		TotalBytes: sink.TotalBytes,
	}, nil
}

// CollectionOverhead runs one loaded simulation per telemetry system. The
// paper's claims: INT reports vary with path length and dwarf PINT's
// fixed two-byte digests.
func CollectionOverhead(s Scale) ([]CollectionStats, error) {
	var out []CollectionStats
	for _, system := range CollectionSystems() {
		st, err := CollectionOverheadFor(s, system)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

// runLoadWithSink is RunLoad with a collection-side sink observing every
// delivered data packet.
func runLoadWithSink(cfg LoadRunConfig, sink *telemetry.Sink) (*LoadRunResult, error) {
	cfg.deliverHook = func(h *netsim.HostNode, pkt *netsim.Packet) {
		if !pkt.Ack && pkt.Dst == h.ID && pkt.Hops > 0 {
			sink.Observe(pkt)
		}
	}
	return RunLoad(cfg)
}

// CollectionTable renders the comparison.
func CollectionTable(stats []CollectionStats) Table {
	t := Table{Title: "§2 problem 3: sink-to-collector report stream",
		Columns: []string{"system", "reports", "meanBytes", "fixedSize", "totalKB"}}
	for _, st := range stats {
		t.Rows = append(t.Rows, []string{
			st.System,
			fmt.Sprintf("%d", st.Reports),
			F(st.MeanBytes),
			fmt.Sprintf("%v", st.FixedSize),
			F(float64(st.TotalBytes) / 1024),
		})
	}
	return t
}
