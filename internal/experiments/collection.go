package experiments

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// CollectionStats quantifies §2's third overhead problem on a live
// simulation: the bandwidth the sink-to-collector path consumes and
// whether reports are fixed-size (what Confluo-style ingestion needs).
type CollectionStats struct {
	System     string
	Reports    int
	MeanBytes  float64
	FixedSize  bool
	TotalBytes int64
}

// CollectionOverhead runs one loaded simulation per telemetry system and
// models the sink's report stream for every delivered data packet. The
// paper's claims: INT reports vary with path length and dwarf PINT's
// fixed two-byte digests.
func CollectionOverhead(s Scale) ([]CollectionStats, error) {
	var out []CollectionStats
	for _, sys := range []struct {
		name string
		kind telemetry.ReportKind
		tk   TransportKind
	}{
		{"INT (3 values/hop)", telemetry.ReportINT, KindHPCCINT},
		{"PINT (16-bit digest)", telemetry.ReportPINT, KindHPCCPINT},
	} {
		sink, err := telemetry.NewSink(sys.kind, 3, 16)
		if err != nil {
			return nil, err
		}
		cfg := LoadRunConfig{Scale: s, Dist: workload.Hadoop(), Load: 0.5,
			Kind: sys.tk, MinFlows: 100}
		cfg.hopHook = nil
		res, err := runLoadWithSink(cfg, sink)
		if err != nil {
			return nil, err
		}
		_ = res
		out = append(out, CollectionStats{
			System:     sys.name,
			Reports:    sink.Reports,
			MeanBytes:  sink.MeanBytes(),
			FixedSize:  sink.FixedSize(),
			TotalBytes: sink.TotalBytes,
		})
	}
	return out, nil
}

// runLoadWithSink is RunLoad with a collection-side sink observing every
// delivered data packet.
func runLoadWithSink(cfg LoadRunConfig, sink *telemetry.Sink) (*LoadRunResult, error) {
	cfg.deliverHook = func(h *netsim.HostNode, pkt *netsim.Packet) {
		if !pkt.Ack && pkt.Dst == h.ID && pkt.Hops > 0 {
			sink.Observe(pkt)
		}
	}
	return RunLoad(cfg)
}

// CollectionTable renders the comparison.
func CollectionTable(stats []CollectionStats) Table {
	t := Table{Title: "§2 problem 3: sink-to-collector report stream",
		Columns: []string{"system", "reports", "meanBytes", "fixedSize", "totalKB"}}
	for _, st := range stats {
		t.Rows = append(t.Rows, []string{
			st.System,
			fmt.Sprintf("%d", st.Reports),
			F(st.MeanBytes),
			fmt.Sprintf("%v", st.FixedSize),
			F(float64(st.TotalBytes) / 1024),
		})
	}
	return t
}
