package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/coding"
	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/pipeline"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/wire"
)

// PathTrialSeed is one engine path trial's randomness, pre-derived so
// trials can run on any worker in any order with bit-identical results:
// Master seeds the query/engine/recording, Stream seeds the packet-ID
// generator, Flow is the trial's flow key.
type PathTrialSeed struct {
	Master hash.Seed
	Stream uint64
	Flow   core.FlowKey
}

// EnginePathTrialSeeds fans the harness seed out into per-trial seeds
// with the exact draw order the serial harness used (two RNG draws per
// trial), so a parallel runner consuming these seeds reproduces the
// serial run bit for bit.
func EnginePathTrialSeeds(seed uint64, trials int) []PathTrialSeed {
	rng := hash.NewRNG(seed)
	out := make([]PathTrialSeed, trials)
	for t := range out {
		out[t] = PathTrialSeed{
			Master: hash.Seed(rng.Uint64()),
			Stream: rng.Uint64(),
			Flow:   core.FlowKey(uint64(t) + 1),
		}
	}
	return out
}

// EnginePathTrial runs one packets-to-decode episode through the full
// production stack: Compile, EncodeHopBatch per hop, a wire-format round
// trip per block (the switch→collector transfer), and the sharded sink
// (shards workers; answers are bit-identical for any count). The decode
// count is exact: each packet is ingested individually and the sink is
// barriered before the decoder is consulted. Returns the packet count and
// whether the path decoded within maxPkts.
func EnginePathTrial(cfg coding.Config, values, universe []uint64, ts PathTrialSeed, maxPkts, shards int) (int, bool, error) {
	const block = 32
	pkts := make([]core.PacketDigest, block)
	vals := make([]core.HopValues, block)
	wireBuf := make([]byte, 0, block*12)
	rx := make([]core.PacketDigest, 0, block)
	k := len(values)
	q, err := core.NewPathQuery("path", cfg, 1, ts.Master, universe)
	if err != nil {
		return 0, false, err
	}
	eng, err := core.Compile([]core.Query{q}, cfg.TotalBits(), ts.Master.Derive(1))
	if err != nil {
		return 0, false, err
	}
	if shards < 1 {
		shards = 1
	}
	sink, err := pipeline.NewSink(eng, pipeline.Config{Shards: shards, Base: ts.Master.Derive(2)})
	if err != nil {
		return 0, false, err
	}
	defer sink.Close()
	sub := hash.NewRNG(ts.Stream)
	n, done := 0, false
	for n < maxPkts && !done {
		b := block
		if n+b > maxPkts {
			b = maxPkts - n
		}
		for j := 0; j < b; j++ {
			pkts[j] = core.PacketDigest{Flow: ts.Flow, PktID: sub.Uint64(), PathLen: k}
		}
		for hop := 1; hop <= k; hop++ {
			for j := 0; j < b; j++ {
				vals[j].SwitchID = values[hop-1]
			}
			eng.EncodeHopBatch(hop, pkts[:b], vals[:b])
		}
		// Ship the block switch→collector through the wire format, as
		// a deployment would; the collector records the decoded copy.
		rx, wireBuf, err = wire.Roundtrip(rx, wireBuf, pkts[:b])
		if err != nil {
			return 0, false, err
		}
		// Ingest one packet at a time so the decode count is exact.
		for j := 0; j < b; j++ {
			sink.Ingest(rx[j : j+1])
			n++
			sink.Barrier()
			if dec := sink.Recording(ts.Flow).PathDecoder(q, ts.Flow); dec != nil && dec.Done() {
				done = true
				break
			}
		}
	}
	if err := sink.Close(); err != nil {
		return 0, false, err
	}
	return n, done, nil
}

// EnginePathStats aggregates decoded-trial packet counts into the order
// statistics the path experiments report.
func EnginePathStats(counts []int, trials int) coding.Stats {
	st := coding.Stats{Trials: trials, Decoded: len(counts)}
	if len(counts) == 0 {
		return st
	}
	counts = append([]int(nil), counts...)
	sort.Ints(counts)
	sum := 0
	for _, c := range counts {
		sum += c
	}
	st.Mean = float64(sum) / float64(len(counts))
	st.Median = float64(counts[len(counts)/2])
	st.P99 = float64(counts[int(math.Ceil(0.99*float64(len(counts))))-1])
	st.Max = counts[len(counts)-1]
	return st
}

// EnginePathTrials measures packets-to-decode for a path query driven
// through the full compiled system — Compile, EncodeHopBatch per hop, a
// wire-format round trip (every encoded block is marshaled and unmarshaled
// as a switch→collector transfer would), and the sharded sink — rather
// than the raw coding harness. cmd/pinttrace and the scenario registry
// run the same trials through a worker pool (see internal/scenario); this
// serial form is their reference and is bit-identical to any parallel
// schedule of the same seeds.
func EnginePathTrials(cfg coding.Config, values, universe []uint64, trials int, seed uint64, maxPkts, shards int) (coding.Stats, error) {
	counts := make([]int, 0, trials)
	for _, ts := range EnginePathTrialSeeds(seed, trials) {
		n, ok, err := EnginePathTrial(cfg, values, universe, ts, maxPkts, shards)
		if err != nil {
			return coding.Stats{}, err
		}
		if ok {
			counts = append(counts, n)
		}
	}
	return EnginePathStats(counts, trials), nil
}

// PathPoint is one (scheme, path length) cell of Fig 10.
type PathPoint struct {
	Scheme  string
	PathLen int
	Mean    float64
	P99     float64
}

// Fig10Topology names one of the figure's three panels-pairs.
type Fig10Topology string

// The three evaluation topologies of §6.3.
const (
	TopoKentucky  Fig10Topology = "kentucky"  // D=59, 753 switches
	TopoUSCarrier Fig10Topology = "uscarrier" // D=36, 157 switches
	TopoFatTree   Fig10Topology = "fattree"   // K=8, D=5
)

// fig10Setup returns the topology, the paper's x-axis path lengths and
// the configured d (10 for ISP topologies, 5 for the fat tree — §6.3).
func fig10Setup(name Fig10Topology) (*topology.Graph, []int, int, error) {
	switch name {
	case TopoKentucky:
		g, err := topology.KentuckyDatalinkLike()
		return g, []int{6, 12, 18, 24, 30, 36, 42, 48, 54}, 10, err
	case TopoUSCarrier:
		g, err := topology.USCarrierLike()
		return g, []int{4, 8, 12, 16, 20, 24, 28, 32, 36}, 10, err
	case TopoFatTree:
		g, err := topology.FatTree(8)
		return g, []int{2, 3, 4, 5}, 5, err
	default:
		return nil, nil, 0, fmt.Errorf("experiments: unknown topology %q", name)
	}
}

// Fig10Lengths returns the paper's x-axis path lengths for one of the
// figure's topologies — the trial axis the scenario registry fans out
// over (each length's randomness derives purely from (Scale.Seed, l)).
func Fig10Lengths(name Fig10Topology) ([]int, error) {
	_, lengths, _, err := fig10Setup(name)
	return lengths, err
}

// Fig10Planner builds the named topology once and returns the figure's
// length axis plus a per-length runner over the shared graph (topology
// queries are pure reads, so concurrent trials may share it). Every
// scheme's seeds are pure functions of (s.Seed, l), so lengths are
// independent trials: running them in any order or on any worker
// reproduces the serial figure bit for bit.
func Fig10Planner(name Fig10Topology) ([]int, func(s Scale, l int) ([]PathPoint, error), error) {
	g, lengths, d, err := fig10Setup(name)
	if err != nil {
		return nil, nil, err
	}
	universe := g.SwitchIDUniverse()
	run := func(s Scale, l int) ([]PathPoint, error) {
		return fig10AtLength(g, universe, d, s, l)
	}
	return lengths, run, nil
}

// Fig10AtLength runs one path length of Figure 10: all three PINT budgets
// plus the PPM and AMS2 baselines over a path of l switches in the named
// topology. It returns nil points when the topology has no such path
// length. Callers looping over lengths should use Fig10Planner, which
// builds the topology once.
func Fig10AtLength(s Scale, name Fig10Topology, l int) ([]PathPoint, error) {
	g, _, d, err := fig10Setup(name)
	if err != nil {
		return nil, err
	}
	return fig10AtLength(g, g.SwitchIDUniverse(), d, s, l)
}

// fig10AtLength is the shared per-length body over a prebuilt graph.
func fig10AtLength(g *topology.Graph, universe []uint64, d int, s Scale, l int) ([]PathPoint, error) {
	// "Path length l" counts encoder switches; a path visiting l
	// switches connects a switch pair at BFS distance l-1.
	pairs := g.SwitchPairsAtDistance(l-1, 1, s.Seed+uint64(l))
	if len(pairs) == 0 {
		return nil, nil // topology has no such path length
	}
	// Path switch IDs between the chosen pair.
	nodePath := g.Path(pairs[0][0], pairs[0][1], s.Seed)
	values := make([]uint64, 0, l+1)
	for _, n := range nodePath {
		values = append(values, g.Nodes[n].SwitchID)
	}
	maxPkts := 400000

	var out []PathPoint
	pintCfg := func(bits, inst int) coding.Config {
		cfg, _ := core.DefaultPathConfig(bits, inst, d)
		return cfg
	}
	for _, sc := range []struct {
		name string
		cfg  coding.Config
	}{
		{"PINT 2x(b=8)", pintCfg(8, 2)},
		{"PINT (b=4)", pintCfg(4, 1)},
		{"PINT (b=1)", pintCfg(1, 1)},
	} {
		st, err := coding.RunTrials(sc.cfg, values, universe, s.Trials, s.Seed+uint64(l), maxPkts)
		if err != nil {
			return nil, err
		}
		if st.Decoded < st.Trials {
			return nil, fmt.Errorf("experiments: %s decoded %d/%d at l=%d",
				sc.name, st.Decoded, st.Trials, l)
		}
		out = append(out, PathPoint{Scheme: sc.name, PathLen: len(values),
			Mean: st.Mean, P99: st.P99})
	}
	ppm, err := telemetry.RunPPMTrials(values, s.Trials, s.Seed+uint64(l)*7, maxPkts)
	if err != nil {
		return nil, err
	}
	out = append(out, PathPoint{Scheme: "PPM", PathLen: len(values),
		Mean: ppm.Mean, P99: ppm.P99})
	for _, m := range []int{5, 6} {
		ams, err := telemetry.RunAMS2Trials(values, universe, m, s.Trials,
			s.Seed+uint64(l)*11+uint64(m), maxPkts)
		if err != nil {
			return nil, err
		}
		out = append(out, PathPoint{Scheme: fmt.Sprintf("AMS2 (m=%d)", m),
			PathLen: len(values), Mean: ams.Mean, P99: ams.P99})
	}
	return out, nil
}

// Fig10 reproduces Figure 10: the number of packets needed to decode a
// flow's path (mean and 99th percentile) as a function of path length,
// comparing PINT with budgets 2×(b=8), b=4 and b=1 against the improved
// PPM and AMS2 (m=5, m=6) traceback baselines. The paper's claims: PINT
// grows near-linearly in path length and beats the baselines by an order
// of magnitude; even b=1 needs ~7-10x fewer packets than the baselines.
func Fig10(s Scale, name Fig10Topology) ([]PathPoint, error) {
	lengths, run, err := Fig10Planner(name)
	if err != nil {
		return nil, err
	}
	var out []PathPoint
	for _, l := range lengths {
		pts, err := run(s, l)
		if err != nil {
			return nil, err
		}
		out = append(out, pts...)
	}
	return out, nil
}

// Fig10Table renders one topology's panel pair (mean and p99).
func Fig10Table(name Fig10Topology, points []PathPoint) Table {
	schemes := []string{"PINT 2x(b=8)", "PINT (b=4)", "PINT (b=1)", "PPM", "AMS2 (m=5)", "AMS2 (m=6)"}
	t := Table{Title: fmt.Sprintf("Fig 10 (%s): packets to decode path (mean / p99)", name),
		Columns: append([]string{"hops"}, schemes...)}
	byLen := map[int]map[string]PathPoint{}
	var lens []int
	for _, p := range points {
		if byLen[p.PathLen] == nil {
			byLen[p.PathLen] = map[string]PathPoint{}
			lens = append(lens, p.PathLen)
		}
		byLen[p.PathLen][p.Scheme] = p
	}
	for _, l := range lens {
		row := []string{fmt.Sprintf("%d", l)}
		for _, sc := range schemes {
			p := byLen[l][sc]
			row = append(row, fmt.Sprintf("%s/%s", F(p.Mean), F(p.P99)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
