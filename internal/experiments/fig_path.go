package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/coding"
	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/wire"
)

// EnginePathTrials measures packets-to-decode for a path query driven
// through the full compiled system — Compile, EncodeHopBatch per hop, a
// wire-format round trip (every encoded block is marshaled and unmarshaled
// as a switch→collector transfer would), and batched Recording — rather
// than the raw coding harness. cmd/pinttrace and the batch benchmarks use
// it so the interactive drivers exercise the same hot path the sharded
// sink runs, wire encoding included.
func EnginePathTrials(cfg coding.Config, values, universe []uint64, trials int, seed uint64, maxPkts int) (coding.Stats, error) {
	rng := hash.NewRNG(seed)
	const block = 32
	pkts := make([]core.PacketDigest, block)
	vals := make([]core.HopValues, block)
	wireBuf := make([]byte, 0, block*12)
	rx := make([]core.PacketDigest, 0, block)
	counts := make([]int, 0, trials)
	k := len(values)
	for t := 0; t < trials; t++ {
		master := hash.Seed(rng.Uint64())
		q, err := core.NewPathQuery("path", cfg, 1, master, universe)
		if err != nil {
			return coding.Stats{}, err
		}
		eng, err := core.Compile([]core.Query{q}, cfg.TotalBits(), master.Derive(1))
		if err != nil {
			return coding.Stats{}, err
		}
		rec, err := core.NewRecordingSeeded(eng, 0, master.Derive(2))
		if err != nil {
			return coding.Stats{}, err
		}
		flow := core.FlowKey(uint64(t) + 1)
		sub := rng.Split()
		n, done := 0, false
		for n < maxPkts && !done {
			b := block
			if n+b > maxPkts {
				b = maxPkts - n
			}
			for j := 0; j < b; j++ {
				pkts[j] = core.PacketDigest{Flow: flow, PktID: sub.Uint64(), PathLen: k}
			}
			for hop := 1; hop <= k; hop++ {
				for j := 0; j < b; j++ {
					vals[j].SwitchID = values[hop-1]
				}
				eng.EncodeHopBatch(hop, pkts[:b], vals[:b])
			}
			// Ship the block switch→collector through the wire format, as
			// a deployment would; the collector records the decoded copy.
			wireBuf, err = wire.AppendMarshal(wireBuf[:0], pkts[:b])
			if err != nil {
				return coding.Stats{}, err
			}
			rx, err = wire.AppendUnmarshal(rx[:0], wireBuf)
			if err != nil {
				return coding.Stats{}, err
			}
			// Record one packet at a time so the decode count is exact.
			for j := 0; j < b; j++ {
				if err := rec.RecordBatch(rx[j : j+1]); err != nil {
					return coding.Stats{}, err
				}
				n++
				if dec := rec.PathDecoder(q, flow); dec != nil && dec.Done() {
					done = true
					break
				}
			}
		}
		if done {
			counts = append(counts, n)
		}
	}
	st := coding.Stats{Trials: trials, Decoded: len(counts)}
	if len(counts) == 0 {
		return st, nil
	}
	sort.Ints(counts)
	sum := 0
	for _, c := range counts {
		sum += c
	}
	st.Mean = float64(sum) / float64(len(counts))
	st.Median = float64(counts[len(counts)/2])
	st.P99 = float64(counts[int(math.Ceil(0.99*float64(len(counts))))-1])
	st.Max = counts[len(counts)-1]
	return st, nil
}

// PathPoint is one (scheme, path length) cell of Fig 10.
type PathPoint struct {
	Scheme  string
	PathLen int
	Mean    float64
	P99     float64
}

// Fig10Topology names one of the figure's three panels-pairs.
type Fig10Topology string

// The three evaluation topologies of §6.3.
const (
	TopoKentucky  Fig10Topology = "kentucky"  // D=59, 753 switches
	TopoUSCarrier Fig10Topology = "uscarrier" // D=36, 157 switches
	TopoFatTree   Fig10Topology = "fattree"   // K=8, D=5
)

// fig10Setup returns the topology, the paper's x-axis path lengths and
// the configured d (10 for ISP topologies, 5 for the fat tree — §6.3).
func fig10Setup(name Fig10Topology) (*topology.Graph, []int, int, error) {
	switch name {
	case TopoKentucky:
		g, err := topology.KentuckyDatalinkLike()
		return g, []int{6, 12, 18, 24, 30, 36, 42, 48, 54}, 10, err
	case TopoUSCarrier:
		g, err := topology.USCarrierLike()
		return g, []int{4, 8, 12, 16, 20, 24, 28, 32, 36}, 10, err
	case TopoFatTree:
		g, err := topology.FatTree(8)
		return g, []int{2, 3, 4, 5}, 5, err
	default:
		return nil, nil, 0, fmt.Errorf("experiments: unknown topology %q", name)
	}
}

// Fig10 reproduces Figure 10: the number of packets needed to decode a
// flow's path (mean and 99th percentile) as a function of path length,
// comparing PINT with budgets 2×(b=8), b=4 and b=1 against the improved
// PPM and AMS2 (m=5, m=6) traceback baselines. The paper's claims: PINT
// grows near-linearly in path length and beats the baselines by an order
// of magnitude; even b=1 needs ~7-10x fewer packets than the baselines.
func Fig10(s Scale, name Fig10Topology) ([]PathPoint, error) {
	g, lengths, d, err := fig10Setup(name)
	if err != nil {
		return nil, err
	}
	universe := g.SwitchIDUniverse()
	var out []PathPoint
	for _, l := range lengths {
		// "Path length l" counts encoder switches; a path visiting l
		// switches connects a switch pair at BFS distance l-1.
		pairs := g.SwitchPairsAtDistance(l-1, 1, s.Seed+uint64(l))
		if len(pairs) == 0 {
			continue // topology has no such path length
		}
		// Path switch IDs between the chosen pair.
		nodePath := g.Path(pairs[0][0], pairs[0][1], s.Seed)
		values := make([]uint64, 0, l+1)
		for _, n := range nodePath {
			values = append(values, g.Nodes[n].SwitchID)
		}
		maxPkts := 400000

		pintCfg := func(bits, inst int) coding.Config {
			cfg, _ := core.DefaultPathConfig(bits, inst, d)
			return cfg
		}
		for _, sc := range []struct {
			name string
			cfg  coding.Config
		}{
			{"PINT 2x(b=8)", pintCfg(8, 2)},
			{"PINT (b=4)", pintCfg(4, 1)},
			{"PINT (b=1)", pintCfg(1, 1)},
		} {
			st, err := coding.RunTrials(sc.cfg, values, universe, s.Trials, s.Seed+uint64(l), maxPkts)
			if err != nil {
				return nil, err
			}
			if st.Decoded < st.Trials {
				return nil, fmt.Errorf("experiments: %s decoded %d/%d at l=%d",
					sc.name, st.Decoded, st.Trials, l)
			}
			out = append(out, PathPoint{Scheme: sc.name, PathLen: len(values),
				Mean: st.Mean, P99: st.P99})
		}
		ppm, err := telemetry.RunPPMTrials(values, s.Trials, s.Seed+uint64(l)*7, maxPkts)
		if err != nil {
			return nil, err
		}
		out = append(out, PathPoint{Scheme: "PPM", PathLen: len(values),
			Mean: ppm.Mean, P99: ppm.P99})
		for _, m := range []int{5, 6} {
			ams, err := telemetry.RunAMS2Trials(values, universe, m, s.Trials,
				s.Seed+uint64(l)*11+uint64(m), maxPkts)
			if err != nil {
				return nil, err
			}
			out = append(out, PathPoint{Scheme: fmt.Sprintf("AMS2 (m=%d)", m),
				PathLen: len(values), Mean: ams.Mean, P99: ams.P99})
		}
	}
	return out, nil
}

// Fig10Table renders one topology's panel pair (mean and p99).
func Fig10Table(name Fig10Topology, points []PathPoint) Table {
	schemes := []string{"PINT 2x(b=8)", "PINT (b=4)", "PINT (b=1)", "PPM", "AMS2 (m=5)", "AMS2 (m=6)"}
	t := Table{Title: fmt.Sprintf("Fig 10 (%s): packets to decode path (mean / p99)", name),
		Columns: append([]string{"hops"}, schemes...)}
	byLen := map[int]map[string]PathPoint{}
	var lens []int
	for _, p := range points {
		if byLen[p.PathLen] == nil {
			byLen[p.PathLen] = map[string]PathPoint{}
			lens = append(lens, p.PathLen)
		}
		byLen[p.PathLen][p.Scheme] = p
	}
	for _, l := range lens {
		row := []string{fmt.Sprintf("%d", l)}
		for _, sc := range schemes {
			p := byLen[l][sc]
			row = append(row, fmt.Sprintf("%s/%s", F(p.Mean), F(p.P99)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
