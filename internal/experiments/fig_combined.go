package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/netsim"
	"repro/internal/pipeline"
	"repro/internal/sketch"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/workload"
)

// CombinedMetrics are Fig 11's three panels for one configuration.
type CombinedMetrics struct {
	Name             string
	MeanSlowdown     float64 // HPCC panel
	PathMeanPackets  float64 // path-tracing panel (flows that decoded)
	PathDecodedFlows int
	MedianLatErrPct  float64 // latency panel: median-latency relative error
	TailLatErrPct    float64 // and tail (p90 at bench sample counts)
}

// planSpec describes one full-system run: its queries, the global wire
// budget, and which query handles to measure.
type planSpec struct {
	queries []core.Query
	global  int
	path    *core.PathQuery    // nil: skip the path metric
	lat     *core.LatencyQuery // nil: skip the latency metric
	util    *core.UtilQuery    // required (feeds the transport)
	measure bool               // measure the slowdown from this run
}

// Fig11Arm names one of Figure 11's three full-system runs; the arms are
// seeded independently, so the scenario registry runs them as parallel
// trials with results bit-identical to the serial figure.
type Fig11Arm int

// The figure's arms.
const (
	Fig11Combined Fig11Arm = iota
	Fig11SoloPath
	Fig11SoloLat
)

// Fig11RunArm runs one arm's loaded simulation and returns its metrics.
func Fig11RunArm(s Scale, arm Fig11Arm) (*CombinedMetrics, error) {
	mk, err := fig11ArmSpec(s, arm)
	if err != nil {
		return nil, err
	}
	return runPlanSim(s, mk)
}

// fig11ArmSpec builds one arm's plan constructor.
func fig11ArmSpec(s Scale, arm Fig11Arm) (func(universe []uint64) (planSpec, error), error) {
	master := hash.Seed(s.Seed).Derive(0xF16)
	const d = 5

	// Combined: path 2×(b=4)@1 + lat 8b@15/16 + hpcc 8b@1/16 in 16 bits.
	makeCombined := func(universe []uint64) (planSpec, error) {
		cfg, err := core.DefaultPathConfig(4, 2, d)
		if err != nil {
			return planSpec{}, err
		}
		path, err := core.NewPathQuery("path", cfg, 1, master, universe)
		if err != nil {
			return planSpec{}, err
		}
		lat, err := core.NewLatencyQuery("lat", 8, 0.04, 15.0/16, master)
		if err != nil {
			return planSpec{}, err
		}
		util, err := core.NewUtilQuery("hpcc", 8, 0.025, 1.0/16, 1000, master)
		if err != nil {
			return planSpec{}, err
		}
		return planSpec{queries: []core.Query{path, lat, util}, global: 16,
			path: path, lat: lat, util: util, measure: true}, nil
	}

	// Baseline A: path alone, 2×(b=8) on every packet (Fig 10's best),
	// with an out-of-plan HPCC control digest so the transport behaves.
	makeSoloPath := func(universe []uint64) (planSpec, error) {
		cfg, err := core.DefaultPathConfig(8, 2, d)
		if err != nil {
			return planSpec{}, err
		}
		path, err := core.NewPathQuery("path", cfg, 1, master.Derive(1), universe)
		if err != nil {
			return planSpec{}, err
		}
		util, err := core.NewUtilQuery("hpcc", 8, 0.025, 1.0/16, 1000, master.Derive(1))
		if err != nil {
			return planSpec{}, err
		}
		return planSpec{queries: []core.Query{path, util}, global: 24,
			path: path, util: util}, nil
	}

	// Baseline B: latency alone on every packet + HPCC control; measures
	// latency error and (as the least-contended run) the solo slowdown.
	makeSoloLat := func([]uint64) (planSpec, error) {
		lat, err := core.NewLatencyQuery("lat", 8, 0.04, 1, master.Derive(2))
		if err != nil {
			return planSpec{}, err
		}
		util, err := core.NewUtilQuery("hpcc", 8, 0.025, 1.0/16, 1000, master.Derive(2))
		if err != nil {
			return planSpec{}, err
		}
		return planSpec{queries: []core.Query{lat, util}, global: 16,
			lat: lat, util: util, measure: true}, nil
	}

	switch arm {
	case Fig11Combined:
		return makeCombined, nil
	case Fig11SoloPath:
		return makeSoloPath, nil
	case Fig11SoloLat:
		return makeSoloLat, nil
	default:
		return nil, fmt.Errorf("experiments: unknown Fig 11 arm %d", arm)
	}
}

// Fig11Assemble folds the three arms' metrics into the figure's two rows.
func Fig11Assemble(combined, soloPath, soloLat *CombinedMetrics) []CombinedMetrics {
	combined.Name = "Combined"
	baseline := CombinedMetrics{
		Name:             "Baseline",
		MeanSlowdown:     soloLat.MeanSlowdown,
		PathMeanPackets:  soloPath.PathMeanPackets,
		PathDecodedFlows: soloPath.PathDecodedFlows,
		MedianLatErrPct:  soloLat.MedianLatErrPct,
		TailLatErrPct:    soloLat.TailLatErrPct,
	}
	return []CombinedMetrics{baseline, *combined}
}

// Fig11 reproduces Figure 11: three queries (path tracing on every
// packet, latency on 15/16, HPCC on 1/16) share a 16-bit global budget,
// compared against each query running alone with 16 bits. The paper's
// claims: the combined plan costs almost nothing — median-latency error
// +0.7%, short-flow slowdown +6.6%, path packets +0.5% vs solo baselines.
func Fig11(s Scale) ([]CombinedMetrics, error) {
	combined, err := Fig11RunArm(s, Fig11Combined)
	if err != nil {
		return nil, err
	}
	soloPath, err := Fig11RunArm(s, Fig11SoloPath)
	if err != nil {
		return nil, err
	}
	soloLat, err := Fig11RunArm(s, Fig11SoloLat)
	if err != nil {
		return nil, err
	}
	return Fig11Assemble(combined, soloPath, soloLat), nil
}

// runPlanSim runs the full PINT system — engine on switches, a wire-format
// switch→collector transfer and the sharded sink at the recording side,
// HPCC fed from the utilization query — over a Hadoop-loaded leaf-spine
// network and extracts Fig 11's metrics. Scale.Shards sets the sink's
// worker count; per-flow answers are bit-identical for any value.
func runPlanSim(s Scale, mk func(universe []uint64) (planSpec, error)) (*CombinedMetrics, error) {
	g, err := topology.LeafSpine(s.Pods, 2, 2, s.HostsPerTor, 2)
	if err != nil {
		return nil, err
	}
	spec, err := mk(g.SwitchIDUniverse())
	if err != nil {
		return nil, err
	}
	eng, err := core.Compile(spec.queries, spec.global, hash.Seed(s.Seed).Derive(0x51B))
	if err != nil {
		return nil, err
	}
	// The sink seed base reproduces the retired serial Recording's
	// (first draw of RNG(s.Seed+21)); with raw latency storage no sketch
	// randomness is consumed, but keeping the base identical makes the
	// equivalence exact by construction.
	sink, err := pipeline.NewSink(eng, pipeline.Config{
		Shards: s.ShardCount(),
		Base:   hash.Seed(hash.NewRNG(s.Seed + 21).Uint64()),
	})
	if err != nil {
		return nil, err
	}
	defer sink.Close()

	sim := netsim.NewSim()
	buf := 1 << 21
	net, err := netsim.Build(sim, g, netsim.BuildOptions{
		HostLink:     netsim.LinkSpec{Bps: s.HostBps, PropNs: 1000, BufBytes: buf},
		TierLink:     netsim.LinkSpec{Bps: s.TierBps, PropNs: 1000, BufBytes: buf},
		ValuesPerHop: 3,
	})
	if err != nil {
		return nil, err
	}
	baseRTT := s.BaseRTTNs()
	pu, err := transport.NewPINTUtilization(baseRTT, 8)
	if err != nil {
		return nil, err
	}

	// Switch-side: EWMA update plus the engine's compiled Encoding
	// Modules — the closure-free batch-pipeline encode path.
	utilQ := spec.util
	net.OnDequeue = func(n *netsim.Network, sw *netsim.SwitchNode, port *netsim.Port,
		pkt *netsim.Packet, qlen int, tau, hopLat int64) {
		if pkt.Ack {
			return
		}
		u := pu.UpdatePortU(port, tau, qlen, pkt.WireSize(n.ValuesPerHop))
		hv := core.HopValues{
			SwitchID:  n.Graph.Nodes[sw.ID].SwitchID,
			LatencyNs: uint64(hopLat),
			Util:      utilQ.EncodeValue(u),
		}
		pkt.Digest = eng.EncodeHopValues(pkt.ID, pkt.Hops+1, pkt.Digest, &hv)
	}

	// Ground-truth hop latencies per (flow, hop).
	truthLat := map[uint64][][]float64{}
	if spec.lat != nil {
		net.OnHopLatency = func(sw *netsim.SwitchNode, pkt *netsim.Packet, latNs int64) {
			if pkt.Ack {
				return
			}
			hops := truthLat[pkt.FlowID]
			for len(hops) <= pkt.Hops {
				hops = append(hops, nil)
			}
			hops[pkt.Hops] = append(hops[pkt.Hops], float64(latNs))
			truthLat[pkt.FlowID] = hops
		}
	}

	// Sink-side: every delivered digest travels the production collector
	// path — wire marshal/unmarshal (the switch→collector transfer), then
	// the sharded sink. Packets-to-decode tracking stays exact: while a
	// flow's path is undecoded, the sink is barriered after its packet so
	// the decoder can be consulted synchronously.
	pktsSeen := map[core.FlowKey]int{}
	decodedAt := map[core.FlowKey]int{}
	var tap [1]core.PacketDigest
	wireBuf := make([]byte, 0, 16)
	rxBuf := make([]core.PacketDigest, 0, 1)
	net.OnDeliver = func(h *netsim.HostNode, pkt *netsim.Packet) {
		if pkt.Ack || pkt.Dst != h.ID || pkt.Hops == 0 {
			return
		}
		fk := core.FlowKey(pkt.FlowID)
		pktsSeen[fk]++
		tap[0] = core.PacketDigest{Flow: fk, PktID: pkt.ID, PathLen: pkt.Hops, Digest: pkt.Digest}
		var err error
		rxBuf, wireBuf, err = wire.Roundtrip(rxBuf, wireBuf, tap[:])
		if err != nil {
			panic(err)
		}
		sink.Ingest(rxBuf)
		if spec.path != nil {
			if _, done := decodedAt[fk]; !done {
				sink.Barrier()
				if dec := sink.Recording(fk).PathDecoder(spec.path, fk); dec != nil && dec.Done() {
					decodedAt[fk] = pktsSeen[fk]
				}
			}
		}
	}

	// Traffic: Hadoop at 50% load over HPCC fed by the utilization query.
	dist := workload.Hadoop()
	if s.SizeDivisor > 1 {
		dist = dist.Scaled(math.Sqrt(s.SizeDivisor)) // Hadoop flows are already small
	}
	gen, err := workload.NewGenerator(g.Hosts(), dist, 0.5, s.HostBps, hash.NewRNG(s.Seed+3))
	if err != nil {
		return nil, err
	}
	flows := gen.GenerateUntil(s.DurationNs)
	for len(flows) < 200 {
		flows = append(flows, gen.Next())
	}
	var exBuf []core.Extracted
	extractU := func(pktID, digest uint64) (float64, bool) {
		exBuf = eng.ExtractInto(pktID, digest, exBuf[:0])
		for _, ex := range exBuf {
			if ex.Query == core.Query(utilQ) {
				return utilQ.Decode(ex.Bits), true
			}
		}
		return 0, false
	}
	col := &transport.Collector{}
	for _, f := range flows {
		f := f
		stats := &transport.FlowStats{ID: f.ID, Bytes: f.Bytes, StartNs: f.Start}
		col.Add(stats)
		sim.At(f.Start, func() {
			hc := transport.DefaultHPCCConfig(s.HostBps, baseRTT)
			hc.Mode = transport.FeedbackPINT
			hc.PintBits = spec.global
			hc.ExtractU = extractU
			if _, err := transport.StartHPCC(net, f.Src, f.Dst, stats, hc); err != nil {
				panic(err)
			}
		})
	}
	sim.Run(s.DurationNs * 4)
	if err := sink.Close(); err != nil {
		return nil, err
	}

	// Metrics.
	m := &CombinedMetrics{MedianLatErrPct: math.NaN(), TailLatErrPct: math.NaN()}
	res := &LoadRunResult{Collector: col, BaseRTTNs: baseRTT, HostBps: s.HostBps}
	_, slow := res.Slowdowns()
	if len(slow) == 0 {
		return nil, fmt.Errorf("experiments: no flows completed")
	}
	var sum float64
	for _, v := range slow {
		sum += v
	}
	m.MeanSlowdown = sum / float64(len(slow))

	if spec.path != nil {
		var pktSum float64
		for _, n := range decodedAt {
			pktSum += float64(n)
			m.PathDecodedFlows++
		}
		if m.PathDecodedFlows > 0 {
			m.PathMeanPackets = pktSum / float64(m.PathDecodedFlows)
		}
	}

	if spec.lat != nil {
		var medErr, tailErr float64
		var nPairs int
		// Iterate flows in sorted order: the error aggregation sums
		// floats, so a fixed order makes the figure byte-reproducible
		// (map order would reshuffle the additions run to run).
		flowIDs := make([]uint64, 0, len(truthLat))
		for flowID := range truthLat {
			flowIDs = append(flowIDs, flowID)
		}
		sort.Slice(flowIDs, func(i, j int) bool { return flowIDs[i] < flowIDs[j] })
		for _, flowID := range flowIDs {
			hops := truthLat[flowID]
			fk := core.FlowKey(flowID)
			for h := 1; h <= len(hops); h++ {
				truth := hops[h-1]
				if len(truth) < 64 || sink.LatencySamples(spec.lat, fk, h) < 16 {
					continue
				}
				estMed, err1 := sink.LatencyQuantile(spec.lat, fk, h, 0.5)
				estTail, err2 := sink.LatencyQuantile(spec.lat, fk, h, 0.9)
				if err1 != nil || err2 != nil {
					continue
				}
				tm := sketch.ExactQuantile(truth, 0.5)
				tt := sketch.ExactQuantile(truth, 0.9)
				if tm > 0 && tt > 0 {
					medErr += math.Abs(estMed-tm) / tm * 100
					tailErr += math.Abs(estTail-tt) / tt * 100
					nPairs++
				}
			}
		}
		if nPairs > 0 {
			m.MedianLatErrPct = medErr / float64(nPairs)
			m.TailLatErrPct = tailErr / float64(nPairs)
		}
	}
	return m, nil
}

// Fig11Table renders the comparison.
func Fig11Table(ms []CombinedMetrics) Table {
	t := Table{Title: "Fig 11: concurrent queries vs solo baselines (Hadoop, 16-bit budget)",
		Columns: []string{"config", "meanSlowdown", "pathPkts", "decodedFlows", "medLatErr%", "tailLatErr%"}}
	for _, m := range ms {
		t.Rows = append(t.Rows, []string{m.Name, F(m.MeanSlowdown), F(m.PathMeanPackets),
			fmt.Sprintf("%d", m.PathDecodedFlows), F(m.MedianLatErrPct), F(m.TailLatErrPct)})
	}
	return t
}
