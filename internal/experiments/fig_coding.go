package experiments

import (
	"fmt"

	"repro/internal/coding"
	"repro/internal/hash"
)

// CodingCurve is one scheme's Fig 5 series: mean missing hops and decode
// probability after each packet count.
type CodingCurve struct {
	Scheme      string
	Packets     []int     // x axis
	MissingHops []float64 // Fig 5(a): E[missing hops]
	DecodeProb  []float64 // Fig 5(b): P[fully decoded]
}

// Fig05 reproduces Figure 5: Baseline vs XOR (p=1/d) vs Hybrid for
// k = d = 25, raw full-width blocks. The paper's claims: XOR decodes
// fewer hops early but catches up; Hybrid dominates with a median of ~41
// packets vs ~89 for Baseline and much sharper tails.
func Fig05(s Scale) ([]CodingCurve, error) {
	const k, d = 25, 25
	const maxPackets = 200
	values := make([]uint64, k)
	for i := range values {
		values[i] = uint64(0x1000 + i)
	}
	schemes := []struct {
		name string
		lay  coding.Layering
	}{
		{"Baseline", coding.PureBaseline()},
		{"XOR", coding.PureXOR(1.0 / d)},
		{"Hybrid", coding.Hybrid(d, 0.75)},
	}
	rng := hash.NewRNG(s.Seed)
	var out []CodingCurve
	for _, sc := range schemes {
		cfg := coding.Config{Bits: 16, Mode: coding.ModeRaw, ValueBits: 16, Layering: sc.lay}
		missing := make([]float64, maxPackets)
		decoded := make([]float64, maxPackets)
		for tr := 0; tr < s.Trials; tr++ {
			prog, err := coding.Progress(cfg, hash.Seed(rng.Uint64()), values, nil,
				rng.Split(), maxPackets)
			if err != nil {
				return nil, err
			}
			for i, m := range prog {
				missing[i] += float64(m)
				if m == 0 {
					decoded[i]++
				}
			}
		}
		curve := CodingCurve{Scheme: sc.name}
		for i := 0; i < maxPackets; i += 5 {
			curve.Packets = append(curve.Packets, i+1)
			curve.MissingHops = append(curve.MissingHops, missing[i]/float64(s.Trials))
			curve.DecodeProb = append(curve.DecodeProb, decoded[i]/float64(s.Trials))
		}
		out = append(out, curve)
	}
	return out, nil
}

// Fig05Table renders the three curves side by side.
func Fig05Table(curves []CodingCurve) Table {
	t := Table{Title: "Fig 5: coding scheme progress, k=d=25",
		Columns: []string{"packets"}}
	for _, c := range curves {
		t.Columns = append(t.Columns, c.Scheme+":missing", c.Scheme+":P(dec)")
	}
	for i := range curves[0].Packets {
		row := []string{fmt.Sprintf("%d", curves[0].Packets[i])}
		for _, c := range curves {
			row = append(row, F(c.MissingHops[i]), F(c.DecodeProb[i]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// CodingMedianSchemes lists the §4.2 comparison's schemes in table order —
// the trial axis the scenario registry fans out over (each scheme runs
// with the same Scale.Seed, independently of the others).
func CodingMedianSchemes() []string {
	return []string{"Baseline", "XOR(1/d)", "Hybrid", "MultiLayer", "LNC"}
}

// CodingMedianStats runs one scheme's packets-to-decode trials.
func CodingMedianStats(s Scale, scheme string) (coding.Stats, error) {
	const k, d = 25, 25
	values := make([]uint64, k)
	for i := range values {
		values[i] = uint64(0x1000 + i)
	}
	var lay coding.Layering
	switch scheme {
	case "Baseline":
		lay = coding.PureBaseline()
	case "XOR(1/d)":
		lay = coding.PureXOR(1.0 / d)
	case "Hybrid":
		lay = coding.Hybrid(d, 0.75)
	case "MultiLayer":
		lay = coding.MultiLayer(d, true)
	case "LNC":
		return lncTrials(values, s.Trials, s.Seed)
	default:
		return coding.Stats{}, fmt.Errorf("experiments: unknown coding scheme %q", scheme)
	}
	cfg := coding.Config{Bits: 16, Mode: coding.ModeRaw, ValueBits: 16, Layering: lay}
	return coding.RunTrials(cfg, values, nil, s.Trials, s.Seed, 5000)
}

// CodingMediansTable renders scheme stats in CodingMedianSchemes order.
func CodingMediansTable(schemes []string, stats []coding.Stats) Table {
	t := Table{Title: "§4.2: packets to decode, k=d=25",
		Columns: []string{"scheme", "mean", "median", "p99"}}
	for i, name := range schemes {
		st := stats[i]
		t.Rows = append(t.Rows, []string{name, F(st.Mean), F(st.Median), F(st.P99)})
	}
	return t
}

// CodingMedians summarizes each scheme's packets-to-decode order
// statistics (the §4.2 numbers: Baseline median 89/p99 189, Hybrid
// median 41/p99 68 for k=25).
func CodingMedians(s Scale) (Table, error) {
	schemes := CodingMedianSchemes()
	stats := make([]coding.Stats, len(schemes))
	for i, name := range schemes {
		st, err := CodingMedianStats(s, name)
		if err != nil {
			return Table{}, err
		}
		stats[i] = st
	}
	return CodingMediansTable(schemes, stats), nil
}

func lncTrials(values []uint64, trials int, seed uint64) (coding.Stats, error) {
	rng := hash.NewRNG(seed)
	counts := make([]int, 0, trials)
	for tr := 0; tr < trials; tr++ {
		l, err := coding.NewLNC(hash.NewGlobal(hash.Seed(rng.Uint64())), len(values))
		if err != nil {
			return coding.Stats{}, err
		}
		sub := rng.Split()
		n := 0
		for !l.Done() {
			pkt := sub.Uint64()
			l.Observe(pkt, l.Encode(pkt, values))
			n++
		}
		counts = append(counts, n)
	}
	// Reuse coding.Stats shape via a tiny local summary.
	st := coding.Stats{Trials: trials, Decoded: trials}
	sortInts(counts)
	sum := 0
	for _, c := range counts {
		sum += c
	}
	st.Mean = float64(sum) / float64(len(counts))
	st.Median = float64(counts[len(counts)/2])
	st.P99 = float64(counts[(99*len(counts)+99)/100-1])
	st.Max = counts[len(counts)-1]
	return st, nil
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
