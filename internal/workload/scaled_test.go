package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hash"
)

func TestScaledPreservesShape(t *testing.T) {
	d := WebSearch()
	s := d.Scaled(64)
	// Every quantile must scale by ~the divisor.
	for _, u := range []float64{0.2, 0.5, 0.9} {
		ratio := d.Quantile(u) / s.Quantile(u)
		if math.Abs(ratio-64) > 1 {
			t.Fatalf("u=%v: scale ratio %v, want ~64", u, ratio)
		}
	}
	if math.Abs(d.MeanBytes()/s.MeanBytes()-64) > 2 {
		t.Fatalf("mean ratio %v, want ~64", d.MeanBytes()/s.MeanBytes())
	}
}

func TestScaledExtremeDivisorStaysValid(t *testing.T) {
	// Dividing Hadoop's tiny flows by a huge factor must still produce a
	// strictly increasing CDF (the flooring logic).
	d := Hadoop().Scaled(1e6)
	prev := 0.0
	for u := 0.01; u <= 1; u += 0.01 {
		q := d.Quantile(u)
		if q < prev {
			t.Fatalf("scaled CDF not monotone at u=%v", u)
		}
		prev = q
	}
	rng := hash.NewRNG(1)
	for i := 0; i < 1000; i++ {
		if d.Sample(rng) < 1 {
			t.Fatal("scaled sample below 1 byte")
		}
	}
}

func TestScaledNonPositiveDivisorIsIdentity(t *testing.T) {
	d := Hadoop()
	s := d.Scaled(0)
	if s.Quantile(0.5) != d.Quantile(0.5) {
		t.Fatal("divisor <= 0 must behave as identity")
	}
}

func TestScaledProperty(t *testing.T) {
	d := WebSearch()
	f := func(divRaw uint8, uRaw uint16) bool {
		div := 1 + float64(divRaw)
		u := float64(uRaw) / 65536
		s := d.Scaled(div)
		q := s.Quantile(u)
		return q >= 1 && q <= d.Quantile(u)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
