// Package workload generates the traffic the PINT evaluation drives its
// simulations with (§6.1): flow sizes drawn from the web-search [3]
// (DCTCP/Microsoft) and Hadoop [62] (Facebook) distributions, and Poisson
// flow arrivals calibrated so the offered load matches a target fraction
// of the network capacity.
//
// The two empirical distributions are encoded by their deciles exactly as
// the paper's Fig 7(b)/(c) axes report them ("the x-axis scale is chosen
// such that there are 10% of the flows between consecutive tick marks"),
// with log-linear interpolation inside each decile.
package workload

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/hash"
)

// CDFPoint is one (size, cumulative-probability) knot of an empirical
// flow-size distribution.
type CDFPoint struct {
	Bytes float64
	Cum   float64
}

// Dist is an empirical flow-size distribution with log-linear
// interpolation between knots.
type Dist struct {
	Name   string
	points []CDFPoint
	mean   float64
}

// NewDist builds a distribution from CDF knots. Knots must be strictly
// increasing in both coordinates and end at cumulative probability 1.
func NewDist(name string, points []CDFPoint) (*Dist, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("workload: need >= 2 CDF points")
	}
	for i, p := range points {
		if p.Bytes <= 0 || p.Cum < 0 || p.Cum > 1 {
			return nil, fmt.Errorf("workload: bad CDF point %+v", p)
		}
		if i > 0 && (p.Bytes <= points[i-1].Bytes || p.Cum <= points[i-1].Cum) {
			return nil, fmt.Errorf("workload: CDF not strictly increasing at %d", i)
		}
	}
	if points[len(points)-1].Cum != 1 {
		return nil, fmt.Errorf("workload: CDF must end at 1")
	}
	d := &Dist{Name: name, points: points}
	d.mean = d.computeMean()
	return d, nil
}

// computeMean integrates the quantile function numerically.
func (d *Dist) computeMean() float64 {
	const steps = 100000
	sum := 0.0
	for i := 0; i < steps; i++ {
		u := (float64(i) + 0.5) / steps
		sum += d.Quantile(u)
	}
	return sum / steps
}

// Quantile inverts the CDF: the flow size at cumulative probability u,
// log-linearly interpolated.
func (d *Dist) Quantile(u float64) float64 {
	pts := d.points
	if u <= pts[0].Cum {
		return pts[0].Bytes
	}
	if u >= 1 {
		return pts[len(pts)-1].Bytes
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Cum >= u })
	lo, hi := pts[i-1], pts[i]
	frac := (u - lo.Cum) / (hi.Cum - lo.Cum)
	return math.Exp(math.Log(lo.Bytes) + frac*(math.Log(hi.Bytes)-math.Log(lo.Bytes)))
}

// Sample draws one flow size in bytes (at least 1).
func (d *Dist) Sample(rng *hash.RNG) int64 {
	v := int64(math.Round(d.Quantile(rng.Float64())))
	if v < 1 {
		v = 1
	}
	return v
}

// MeanBytes returns the distribution mean.
func (d *Dist) MeanBytes() float64 { return d.mean }

// Scaled returns a copy with every flow size divided by divisor (floored
// at 1 byte). Bench-sized simulations shrink flows so they complete within
// short horizons while keeping the distribution's shape; relative results
// (slowdown orderings, overhead sensitivity) are scale-invariant.
func (d *Dist) Scaled(divisor float64) *Dist {
	if divisor <= 0 {
		divisor = 1
	}
	pts := make([]CDFPoint, len(d.points))
	prev := 0.0
	for i, p := range d.points {
		b := p.Bytes / divisor
		if b < prev+1e-9 {
			b = prev + 1 // keep strict monotonicity after flooring
		}
		pts[i] = CDFPoint{Bytes: b, Cum: p.Cum}
		prev = b
	}
	nd, err := NewDist(d.Name+"-scaled", pts)
	if err != nil {
		panic("workload: scaling broke the CDF: " + err.Error())
	}
	return nd
}

// WebSearch returns the web-search workload [3] with deciles matching
// Fig 7(b)'s tick marks: 7K, 20K, 30K, 50K, 73K, 197K, 989K, 2M, 5M, 30M.
func WebSearch() *Dist {
	d, err := NewDist("websearch", []CDFPoint{
		{Bytes: 1000, Cum: 0.0001},
		{Bytes: 7_000, Cum: 0.1},
		{Bytes: 20_000, Cum: 0.2},
		{Bytes: 30_000, Cum: 0.3},
		{Bytes: 50_000, Cum: 0.4},
		{Bytes: 73_000, Cum: 0.5},
		{Bytes: 197_000, Cum: 0.6},
		{Bytes: 989_000, Cum: 0.7},
		{Bytes: 2_000_000, Cum: 0.8},
		{Bytes: 5_000_000, Cum: 0.9},
		{Bytes: 30_000_000, Cum: 1},
	})
	if err != nil {
		panic("workload: web search distribution invalid: " + err.Error())
	}
	return d
}

// Hadoop returns the Facebook Hadoop workload [62] with deciles matching
// Fig 7(c)'s tick marks: 324, 399, 500, 599, 699, 999, 7K, 46K, 120K, 10M.
func Hadoop() *Dist {
	d, err := NewDist("hadoop", []CDFPoint{
		{Bytes: 200, Cum: 0.0001},
		{Bytes: 324, Cum: 0.1},
		{Bytes: 399, Cum: 0.2},
		{Bytes: 500, Cum: 0.3},
		{Bytes: 599, Cum: 0.4},
		{Bytes: 699, Cum: 0.5},
		{Bytes: 999, Cum: 0.6},
		{Bytes: 7_000, Cum: 0.7},
		{Bytes: 46_000, Cum: 0.8},
		{Bytes: 120_000, Cum: 0.9},
		{Bytes: 10_000_000, Cum: 1},
	})
	if err != nil {
		panic("workload: hadoop distribution invalid: " + err.Error())
	}
	return d
}

// Flow is one generated flow.
type Flow struct {
	ID    uint64
	Src   int   // host node ID
	Dst   int   // host node ID
	Bytes int64 // payload size
	Start int64 // arrival time, ns
}

// Generator produces Poisson flow arrivals between uniformly random
// distinct host pairs with sizes from a Dist, calibrated so the aggregate
// offered load equals `load` times the total host access capacity
// (the standard data-center load definition used in §6.1).
type Generator struct {
	Hosts        []int
	Dist         *Dist
	Load         float64 // target fraction of access capacity, e.g. 0.5
	HostLinkBps  int64   // access link capacity per host
	rng          *hash.RNG
	interArrival float64 // mean ns between flow arrivals network-wide
	next         int64
	nextID       uint64
}

// NewGenerator validates parameters and computes the Poisson rate:
// load × hosts × linkRate / meanFlowSize flows per second network-wide.
func NewGenerator(hosts []int, dist *Dist, load float64, hostLinkBps int64, rng *hash.RNG) (*Generator, error) {
	if len(hosts) < 2 {
		return nil, fmt.Errorf("workload: need >= 2 hosts")
	}
	if load <= 0 || load > 1 {
		return nil, fmt.Errorf("workload: load %v out of (0,1]", load)
	}
	if hostLinkBps <= 0 {
		return nil, fmt.Errorf("workload: non-positive link rate")
	}
	bytesPerSec := load * float64(len(hosts)) * float64(hostLinkBps) / 8
	flowsPerSec := bytesPerSec / dist.MeanBytes()
	return &Generator{
		Hosts:        hosts,
		Dist:         dist,
		Load:         load,
		HostLinkBps:  hostLinkBps,
		rng:          rng,
		interArrival: 1e9 / flowsPerSec,
	}, nil
}

// Next returns the next flow arrival.
func (g *Generator) Next() Flow {
	g.next += int64(math.Round(g.rng.ExpFloat64() * g.interArrival))
	src := g.Hosts[g.rng.Intn(len(g.Hosts))]
	dst := src
	for dst == src {
		dst = g.Hosts[g.rng.Intn(len(g.Hosts))]
	}
	g.nextID++
	return Flow{
		ID:    g.nextID,
		Src:   src,
		Dst:   dst,
		Bytes: g.Dist.Sample(g.rng),
		Start: g.next,
	}
}

// GenerateUntil returns all flows arriving before horizon (ns).
func (g *Generator) GenerateUntil(horizon int64) []Flow {
	var out []Flow
	for {
		f := g.Next()
		if f.Start >= horizon {
			return out
		}
		out = append(out, f)
	}
}

// MeanInterArrivalNs exposes the calibrated Poisson spacing for tests.
func (g *Generator) MeanInterArrivalNs() float64 { return g.interArrival }
