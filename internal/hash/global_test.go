package hash

import (
	"math"
	"testing"
)

func TestReservoirUniformWinner(t *testing.T) {
	// The heart of PINT's dynamic aggregation (§4.1): over many packets the
	// surviving hop must be uniform over the k hops.
	g := NewGlobal(1)
	for _, k := range []int{1, 2, 5, 10, 25} {
		counts := make([]int, k+1)
		const n = 100000
		for p := uint64(0); p < n; p++ {
			counts[g.ReservoirWinner(p, k)]++
		}
		want := float64(n) / float64(k)
		for hop := 1; hop <= k; hop++ {
			if math.Abs(float64(counts[hop])-want) > want*0.07 {
				t.Fatalf("k=%d hop=%d: %d wins, want %.0f +/- 7%%",
					k, hop, counts[hop], want)
			}
		}
	}
}

func TestReservoirFirstHopAlwaysWrites(t *testing.T) {
	g := NewGlobal(2)
	for p := uint64(0); p < 1000; p++ {
		if !g.ReservoirWrites(p, 1) {
			t.Fatal("hop 1 must always write (probability 1/1)")
		}
	}
}

func TestReservoirWinnerMatchesSequentialSimulation(t *testing.T) {
	// The Recording Module's offline computation must agree with what the
	// switches actually did on the wire — the central coordination claim.
	g := NewGlobal(3)
	for p := uint64(0); p < 20000; p++ {
		k := 1 + int(p%30)
		cur := 0
		for i := 1; i <= k; i++ { // the on-path sequential overwrites
			if g.ReservoirWrites(p, i) {
				cur = i
			}
		}
		if got := g.ReservoirWinner(p, k); got != cur {
			t.Fatalf("pkt=%d k=%d: winner %d, wire says %d", p, k, got, cur)
		}
	}
}

func TestActProbability(t *testing.T) {
	g := NewGlobal(4)
	for _, p := range []float64{1.0 / 25, 0.2, 0.04} {
		hits := 0
		const n = 200000
		for pkt := uint64(0); pkt < n; pkt++ {
			if g.Act(pkt, 7, p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > math.Max(0.004, p*0.1) {
			t.Fatalf("Act p=%v: empirical %v", p, got)
		}
	}
}

func TestActIndependentAcrossHops(t *testing.T) {
	// Decisions at different hops must be (pairwise) independent: the XOR
	// layer analysis assumes Bin(k, p) acting hops.
	g := NewGlobal(5)
	const p = 0.5
	both, n := 0, 100000
	for pkt := uint64(0); pkt < uint64(n); pkt++ {
		a := g.Act(pkt, 1, p)
		b := g.Act(pkt, 2, p)
		if a && b {
			both++
		}
	}
	got := float64(both) / float64(n)
	if math.Abs(got-p*p) > 0.01 {
		t.Fatalf("joint probability %v, want %v", got, p*p)
	}
}

func TestQueryPointStable(t *testing.T) {
	g := NewGlobal(6)
	g2 := NewGlobal(6)
	for pkt := uint64(0); pkt < 1000; pkt++ {
		if g.QueryPoint(pkt) != g2.QueryPoint(pkt) {
			t.Fatal("same master seed must give same query selection")
		}
	}
}

func TestValueDigestWidth(t *testing.T) {
	g := NewGlobal(7)
	for _, b := range []int{1, 4, 8, 16} {
		for v := uint64(0); v < 100; v++ {
			d := g.ValueDigest(v, 12345, b)
			if d >= 1<<uint(b) {
				t.Fatalf("b=%d: digest %d out of range", b, d)
			}
		}
	}
}

func TestValueDigestCollisionRate(t *testing.T) {
	// Two distinct values must collide on a b-bit digest w.p. ~2^-b; the
	// path-tracing inference time depends on this directly.
	g := NewGlobal(8)
	for _, b := range []int{1, 4, 8} {
		coll, n := 0, 50000
		for pkt := uint64(0); pkt < uint64(n); pkt++ {
			if g.ValueDigest(111, pkt, b) == g.ValueDigest(222, pkt, b) {
				coll++
			}
		}
		want := math.Pow(2, -float64(b))
		got := float64(coll) / float64(n)
		if math.Abs(got-want) > math.Max(0.004, want*0.15) {
			t.Fatalf("b=%d: collision rate %v, want %v", b, got, want)
		}
	}
}

func TestFragmentRange(t *testing.T) {
	g := NewGlobal(9)
	counts := make([]int, 4)
	const n = 100000
	for pkt := uint64(0); pkt < n; pkt++ {
		f := g.Fragment(pkt, 4)
		if f < 0 || f >= 4 {
			t.Fatalf("fragment %d out of range", f)
		}
		counts[f]++
	}
	for f, c := range counts {
		if math.Abs(float64(c)-n/4.0) > n/4.0*0.05 {
			t.Fatalf("fragment %d: %d, want ~%d", f, c, n/4)
		}
	}
	if g.Fragment(42, 1) != 0 || g.Fragment(42, 0) != 0 {
		t.Fatal("degenerate fragment counts must map to 0")
	}
}

func TestInstanceIndependence(t *testing.T) {
	g := NewGlobal(10)
	i0, i1 := g.Instance(0), g.Instance(1)
	same := 0
	for pkt := uint64(0); pkt < 1000; pkt++ {
		if i0.ValueDigest(5, pkt, 16) == i1.ValueDigest(5, pkt, 16) {
			same++
		}
	}
	// 16-bit digests collide w.p. 2^-16; a thousand trials should see ~0.
	if same > 3 {
		t.Fatalf("instances look correlated: %d matches", same)
	}
}

func TestActVectorMatchesProbability(t *testing.T) {
	g := NewGlobal(11)
	const k = 25
	for _, logInvP := range []int{1, 3, 5} {
		p := math.Pow(2, -float64(logInvP))
		total := 0
		const n = 50000
		for pkt := uint64(0); pkt < n; pkt++ {
			total += popcount(g.ActVector(pkt, k, logInvP))
		}
		got := float64(total) / (n * k)
		if math.Abs(got-p) > p*0.1+0.002 {
			t.Fatalf("logInvP=%d: bit density %v, want %v", logInvP, got, p)
		}
	}
}

func TestActVectorMask(t *testing.T) {
	g := NewGlobal(12)
	for pkt := uint64(0); pkt < 1000; pkt++ {
		v := g.ActVector(pkt, 10, 0)
		if v != (1<<10)-1 {
			t.Fatal("logInvP=0 must set all k bits (p=1)")
		}
		if g.ActVector(pkt, 0, 3) != 0 {
			t.Fatal("k=0 must yield empty vector")
		}
	}
	// k=64 must not shift out of range.
	_ = g.ActVector(1, 64, 2)
}

func TestSetBits(t *testing.T) {
	got := SetBits(0b10110)
	want := []int{2, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("SetBits = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("SetBits = %v, want %v", got, want)
		}
	}
	if len(SetBits(0)) != 0 {
		t.Fatal("SetBits(0) must be empty")
	}
}

func TestActFromVectorAgreesWithSetBits(t *testing.T) {
	g := NewGlobal(13)
	for pkt := uint64(0); pkt < 5000; pkt++ {
		vec := g.ActVector(pkt, 32, 3)
		set := map[int]bool{}
		for _, h := range SetBits(vec) {
			set[h] = true
		}
		for hop := 1; hop <= 32; hop++ {
			if ActFromVector(vec, hop) != set[hop] {
				t.Fatalf("pkt=%d hop=%d disagreement", pkt, hop)
			}
		}
	}
}
