package hash

import "repro/internal/kernels"

// Column helpers: batch evaluations of the global hash family over flat
// []uint64 columns, backing the op-major encode hot path. Each is
// bit-identical to mapping the corresponding scalar method over the
// column — internal/kernels carries the vectorized bodies and the
// equivalence tests that pin them to the scalar reference.

// ActHashColumn fills dst[i] = g(pktIDs[i], hop), the raw act-decision
// hash behind Act/ActBelow/ReservoirWrites, with the hop argument
// loop-invariant. Callers compare the column against a hoisted
// Threshold/ReservoirThreshold value. dst and pktIDs must have equal
// length.
func (g *Global) ActHashColumn(dst, pktIDs []uint64, hop uint64) {
	kernels.HashPktHop(dst, pktIDs, uint64(g.g), hop)
}

// ValueDigestColumn fills dst[i] = ValueDigest(values[i], pktIDs[i], b).
// All three columns must have equal length.
func (g *Global) ValueDigestColumn(dst, values, pktIDs []uint64, b int) {
	kernels.Hash2Cols(dst, values, pktIDs, uint64(g.h))
	switch {
	case b >= 64:
	case b <= 0:
		for i := range dst {
			dst[i] = 0
		}
	default:
		shift := 64 - uint(b)
		for i, h := range dst {
			dst[i] = h >> shift
		}
	}
}

// ValueDigestFixedColumn fills dst[i] = ValueDigest(value, pktIDs[i], 64)
// for a loop-invariant first argument — the Morris-coin shape, where the
// salt is fixed for a whole hop pass. dst and pktIDs must have equal
// length.
func (g *Global) ValueDigestFixedColumn(dst, pktIDs []uint64, value uint64) {
	kernels.HashFixedA(dst, pktIDs, kernels.Hash2Prefix(uint64(g.h), value))
}

// ReservoirThreshold returns the integer threshold T such that, for
// hop >= 2, ReservoirWrites(pkt, hop) is exactly g(pkt, hop) < T. Hops
// <= 1 always write and have no threshold — batch callers special-case
// them before hoisting T out of the per-packet loop.
func ReservoirThreshold(hop int) uint64 {
	if hop < len(reservoirThreshold) {
		if hop < 2 {
			return ^uint64(0)
		}
		return reservoirThreshold[hop]
	}
	// Beyond the table ReservoirWrites falls back to Below(h, 1/hop);
	// Threshold computes the identical floor expression.
	return Threshold(1 / float64(hop))
}
