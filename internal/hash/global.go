package hash

import (
	"math"
	"math/bits"
)

// Global bundles the family of global hash functions a PINT deployment
// shares between switches and the inference plane (§4.1). Every probabilistic
// decision in the system flows through one of these methods, so an encoder
// (simulated switch) and a decoder (Recording/Inference module) reach
// identical conclusions about every packet without exchanging a single bit.
type Global struct {
	q    Seed // query-set selection hash
	g    Seed // act-decision hash g(pkt, hop)
	h    Seed // value hash h(value, pkt)
	frag Seed // fragment-selection hash (§4.2, fragmentation)
	lyr  Seed // layer-selection hash (Algorithm 1, line 1)
	vec  Seed // pseudo-random bit-vector source (§4.2, fast decoding)
}

// NewGlobal derives the full family from one master seed.
func NewGlobal(master Seed) Global {
	return Global{
		q:    master.Derive(1),
		g:    master.Derive(2),
		h:    master.Derive(3),
		frag: master.Derive(4),
		lyr:  master.Derive(5),
		vec:  master.Derive(6),
	}
}

// QueryPoint returns q(pkt) in [0,1): the coordinate used to pick the query
// set a packet serves. All switches evaluate this identically (§3.4).
func (g Global) QueryPoint(pktID uint64) float64 {
	return Unit(g.q.Hash1(pktID))
}

// LayerPoint returns H(pkt) in [0,1) used by Algorithm 1 to choose between
// the Baseline layer (H < tau) and one of the XOR layers.
func (g Global) LayerPoint(pktID uint64) float64 {
	return Unit(g.lyr.Hash1(pktID))
}

// Act reports whether the hop at 1-based position `hop` acts on packet
// pktID with probability p: the comparison g(pkt, hop) < p of §4.1.
func (g Global) Act(pktID uint64, hop int, p float64) bool {
	return Below(g.g.Hash2(pktID, uint64(hop)), p)
}

// ReservoirWrites reports whether hop i (1-based) overwrites the digest
// under Reservoir Sampling, i.e. g(pkt, i) < 1/i (§4.1, Example #1).
func (g Global) ReservoirWrites(pktID uint64, hop int) bool {
	if hop <= 1 {
		return true
	}
	h := g.g.Hash2(pktID, uint64(hop))
	if hop < len(reservoirThreshold) {
		return h < reservoirThreshold[hop]
	}
	return Below(h, 1/float64(hop))
}

// reservoirThreshold[h] is Below's integer threshold for p = 1/h,
// precomputed with the identical float expression Below evaluates so the
// table lookup and the live computation decide every packet the same way.
var reservoirThreshold = func() [65]uint64 {
	var t [65]uint64
	for h := 2; h < len(t); h++ {
		t[h] = uint64(math.Floor(1 / float64(h) * (1 << 32) * (1 << 32)))
	}
	return t
}()

// ReservoirWritesP is ReservoirWrites on a pointer receiver, so the
// compiled per-packet loops skip the 48-byte Global copy per hop.
// Decisions are bit-identical to ReservoirWrites.
func (g *Global) ReservoirWritesP(pktID uint64, hop int) bool {
	if hop <= 1 {
		return true
	}
	h := g.g.Hash2(pktID, uint64(hop))
	if hop < len(reservoirThreshold) {
		return h < reservoirThreshold[hop]
	}
	return Below(h, 1/float64(hop))
}

// Threshold returns Below's integer threshold for probability p, i.e.
// event "Hash < Threshold(p)" fires exactly when Below(Hash, p) does.
// Callers with a fixed p hoist it out of per-packet loops.
func Threshold(p float64) uint64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return ^uint64(0)
	}
	t := math.Floor(p * (1 << 32) * (1 << 32))
	if t >= math.MaxUint64 {
		return ^uint64(0)
	}
	return uint64(t)
}

// ActBelow is Act with a precomputed Threshold, for compiled hot loops.
// A saturated threshold means p >= 1 and always fires, mirroring Below's
// p >= 1 branch (a plain < would miss the hash value 2^64-1).
func (g *Global) ActBelow(pktID uint64, hop int, threshold uint64) bool {
	if threshold == ^uint64(0) {
		return true
	}
	return g.g.Hash2(pktID, uint64(hop)) < threshold
}

// ReservoirWinner returns the 1-based hop whose value survives on a packet
// that traversed k hops under reservoir sampling: the *last* hop i with
// g(pkt,i) < 1/i. This is the computation the Recording Module performs to
// attribute a digest to a hop without any hop ID on the wire. The first hop
// always writes, so a winner always exists for k >= 1.
func (g Global) ReservoirWinner(pktID uint64, k int) int {
	w := 1
	for i := 2; i <= k; i++ {
		if g.ReservoirWrites(pktID, i) {
			w = i
		}
	}
	return w
}

// ValueDigest returns h(value, pkt) truncated to b bits: the hashed-value
// encoding of §4.2 that lets PINT meet budgets narrower than the value.
func (g Global) ValueDigest(value, pktID uint64, b int) uint64 {
	return Bits(g.h.Hash2(value, pktID), b)
}

// Fragment maps a packet to a fragment index in {0, …, nfrag-1} (§4.2,
// "Reducing the Bit-overhead using Fragmentation").
func (g Global) Fragment(pktID uint64, nfrag int) int {
	if nfrag <= 1 {
		return 0
	}
	return int(g.frag.Hash1(pktID) % uint64(nfrag))
}

// Instance re-keys the family for one of several independent repetitions of
// an algorithm ("Improving Performance via Multiple Instantiations", §4.2).
func (g Global) Instance(i int) Global {
	return NewGlobal(g.q.Derive(uint64(i) + 101))
}

// ActVector returns a k-bit vector whose i-th bit (LSB = hop 1) says whether
// hop i xors the packet, where each bit is set independently with
// probability 2^-logInvP. It implements the near-linear decoding trick of
// §4.2: the vector is the bitwise AND of logInvP pseudo-random k-bit words,
// so the whole path's decisions are materialized in O(log 1/p) word
// operations instead of O(k) hash evaluations.
//
// k must be at most 64 (the paper's variant likewise assumes k fits in O(1)
// machine words).
func (g Global) ActVector(pktID uint64, k, logInvP int) uint64 {
	if k <= 0 {
		return 0
	}
	mask := ^uint64(0)
	if k < 64 {
		mask = (1 << uint(k)) - 1
	}
	v := mask
	for r := 0; r < logInvP; r++ {
		v &= g.vec.Hash2(pktID, uint64(r))
	}
	return v & mask
}

// ActFromVector reports hop i's (1-based) decision out of an ActVector.
// Encoders use this so that the per-hop decision matches what the decoder
// reconstructs.
func ActFromVector(vec uint64, hop int) bool {
	return vec>>(uint(hop)-1)&1 == 1
}

// SetBits returns the 1-based hop numbers set in an act vector, in
// ascending order. The expected number of set bits is k·p = O(1) for the
// XOR layers, so decoding stays near-linear overall.
func SetBits(vec uint64) []int {
	out := make([]int, 0, bits.OnesCount64(vec))
	for vec != 0 {
		i := bits.TrailingZeros64(vec)
		out = append(out, i+1)
		vec &= vec - 1
	}
	return out
}
