package hash

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256++) used by the simulator and the experiment harness. We own
// the implementation so that experiment outputs are stable across Go
// releases (math/rand's stream is not guaranteed stable for all methods).
//
// RNG is NOT used on the simulated data plane: switches only ever consume
// global hash functions (Global), mirroring the paper's hardware model.
type RNG struct {
	s [4]uint64
}

// NewRNG seeds a generator. Any seed, including zero, is valid: the state is
// expanded through splitmix64 as recommended by the xoshiro authors.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		x += golden
		r.s[i] = Mix64(x)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 { return Unit(r.Uint64()) }

// Intn returns a uniform integer in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("hash: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit integer, for drop-in familiarity.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Perm returns a pseudo-random permutation of [0,n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// ExpFloat64 returns an exponentially distributed value with rate 1
// (mean 1), via inverse transform sampling. Scale by 1/λ for rate λ.
func (r *RNG) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// NormFloat64 returns a standard normal value (Box–Muller, one branch).
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Split derives an independent generator, useful for giving each simulated
// host or experiment arm its own stream while keeping global determinism.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

// Clone copies the generator at its current state: the clone and the
// original emit identical streams from here on, without affecting each
// other. Snapshots of sketch-bearing state use this so a copied sketch
// evolves exactly as the original would have.
func (r *RNG) Clone() *RNG {
	c := *r
	return &c
}
