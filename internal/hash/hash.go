// Package hash provides the deterministic hashing substrate used throughout
// the PINT reproduction.
//
// PINT (§4.1) relies on global hash functions — functions known to every
// switch and to the offline Inference Module — to coordinate probabilistic
// decisions without any communication:
//
//   - a query-selection hash q(pkt) that maps a packet ID to [0,1) so all
//     switches agree on which query set the packet serves,
//   - an act-decision hash g(pkt, hop) that decides whether the hop at a
//     given position samples/xors the packet's digest,
//   - a value hash h(value, pkt) that compresses a value (e.g. a 32-bit
//     switch ID) to the query's b-bit budget.
//
// All of these must be computable both on the (simulated) data plane and by
// the Inference Module, so they are pure functions of a shared 64-bit seed
// and their integer arguments. The implementation is a from-scratch
// splitmix64-style mixer with strong avalanche behaviour; no external
// dependencies are used.
package hash

import "math"

// Seed identifies one instantiation of the global hash family. Two Seeds
// yield independent-looking hash functions; the same Seed yields identical
// functions on every component of the system (switch encoders, recording
// module, inference module), which is exactly the coordination property
// PINT needs.
type Seed uint64

const (
	// golden is 2^64 / phi, the canonical odd constant for Fibonacci hashing.
	golden = 0x9e3779b97f4a7c15
	mixA   = 0xbf58476d1ce4e5b9
	mixB   = 0x94d049bb133111eb
)

// Mix64 applies the splitmix64 finalizer, a bijective mixing permutation on
// 64-bit integers with full avalanche (every input bit flips every output
// bit with probability ~1/2).
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= mixA
	x ^= x >> 27
	x *= mixB
	x ^= x >> 31
	return x
}

// ShardOf maps a flow key to a shard index in [0, shards). It is THE
// flow→shard routing function of the collector tier: pipeline.Sink routes
// ingest with it and wire's fused decode-and-shard pass computes it during
// unmarshal, so the two must never diverge — a packet staged under one
// rule and recorded under another would split a flow across shards.
// Mix64 keeps sequential flow keys balanced; any pure function of the
// flow key preserves determinism.
func ShardOf(flow, shards uint64) uint64 {
	return Mix64(flow) % shards
}

// Hash1 hashes a single 64-bit word under the seed.
func (s Seed) Hash1(a uint64) uint64 {
	return Mix64(uint64(s) ^ Mix64(a*golden+1))
}

// Hash2 hashes a pair of 64-bit words under the seed. It is the workhorse
// for g(pkt, hop) and h(value, pkt) style functions.
func (s Seed) Hash2(a, b uint64) uint64 {
	h := uint64(s) ^ golden
	h = Mix64(h ^ (a*golden + 1))
	h = Mix64(h ^ (b*mixA + 2))
	return h
}

// Hash3 hashes a triple of 64-bit words under the seed.
func (s Seed) Hash3(a, b, c uint64) uint64 {
	h := uint64(s) ^ golden
	h = Mix64(h ^ (a*golden + 1))
	h = Mix64(h ^ (b*mixA + 2))
	h = Mix64(h ^ (c*mixB + 3))
	return h
}

// HashBytes hashes an arbitrary byte string under the seed using an
// FNV-1a-style accumulation followed by the splitmix finalizer. It is used
// for flow keys (5-tuples rendered as bytes) and other variable-length
// identifiers.
func (s Seed) HashBytes(p []byte) uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset) ^ uint64(s)
	for _, b := range p {
		h ^= uint64(b)
		h *= prime
	}
	return Mix64(h)
}

// HashString hashes a string without allocating.
func (s Seed) HashString(str string) uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset) ^ uint64(s)
	for i := 0; i < len(str); i++ {
		h ^= uint64(str[i])
		h *= prime
	}
	return Mix64(h)
}

// Derive produces a sub-seed for an independent hash function. PINT uses
// several global functions (q, g, h, fragment selection, layer selection);
// each is derived from one master seed with a distinct tag so they behave
// independently.
func (s Seed) Derive(tag uint64) Seed {
	return Seed(Mix64(uint64(s) + tag*golden + 0x6a09e667f3bcc909))
}

// Unit maps a 64-bit hash to the half-open unit interval [0,1). The paper
// phrases the coordination decisions as comparisons of real-valued hashes
// against probabilities; on hardware this is a comparison of an M-bit hash
// against floor((2^M-1)·p) (footnote 5). Unit is the analysis-friendly view;
// Below is the hardware-faithful integer comparison.
func Unit(h uint64) float64 {
	// Use the top 53 bits so the value is exactly representable.
	return float64(h>>11) / (1 << 53)
}

// Below reports whether hash h falls below probability p, i.e. whether the
// event of probability p "fires". It compares integers exactly as a switch
// would compare an M-bit hash register against a precomputed threshold.
func Below(h uint64, p float64) bool {
	switch {
	case p <= 0:
		return false
	case p >= 1:
		return true
	}
	// threshold = floor(2^64 * p), computed carefully to avoid overflow at
	// p close to 1 (math.MaxUint64 cannot be represented exactly in float64).
	t := math.Floor(p * (1 << 32) * (1 << 32))
	if t >= math.MaxUint64 {
		return true
	}
	return h < uint64(t)
}

// InRange reports whether Unit(h) lies in [lo, hi). Query-set selection
// (§3.4) partitions [0,1) into intervals, one per query set in the
// execution plan.
func InRange(h uint64, lo, hi float64) bool {
	u := Unit(h)
	return u >= lo && u < hi
}

// Bits extracts an n-bit digest (n in 1..64) from a 64-bit hash. PINT
// digests are as narrow as a single bit; we take the high bits, which have
// the best mixing.
func Bits(h uint64, n int) uint64 {
	if n <= 0 {
		return 0
	}
	if n >= 64 {
		return h
	}
	return h >> (64 - uint(n))
}
