package hash

import "testing"

// TestActHashColumnMatchesScalar pins the column helper to the scalar
// act-decision hash and to every decision built on it.
func TestActHashColumnMatchesScalar(t *testing.T) {
	g := NewGlobal(Seed(0xC01))
	const n = 131
	pkts := make([]uint64, n)
	for i := range pkts {
		pkts[i] = Seed(7).Hash1(uint64(i))
	}
	h := make([]uint64, n)
	for _, hop := range []int{1, 2, 3, 5, 17, 64, 65, 1000} {
		g.ActHashColumn(h, pkts, uint64(hop))
		thr := ReservoirThreshold(hop)
		for i, pkt := range pkts {
			if want := g.g.Hash2(pkt, uint64(hop)); h[i] != want {
				t.Fatalf("hop %d pkt %#x: column hash %#x, want %#x", hop, pkt, h[i], want)
			}
			wantWrite := g.ReservoirWrites(pkt, hop)
			gotWrite := hop <= 1 || h[i] < thr
			if wantWrite != gotWrite {
				t.Fatalf("hop %d pkt %#x: column reservoir %v, scalar %v", hop, pkt, gotWrite, wantWrite)
			}
		}
	}
}

// TestValueDigestColumnsMatchScalar pins both value-hash column shapes.
func TestValueDigestColumnsMatchScalar(t *testing.T) {
	g := NewGlobal(Seed(0xC02))
	const n = 67
	pkts := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range pkts {
		pkts[i] = Seed(11).Hash1(uint64(i))
		vals[i] = Seed(13).Hash1(uint64(i))
	}
	dst := make([]uint64, n)
	for _, b := range []int{0, 1, 4, 8, 33, 63, 64} {
		g.ValueDigestColumn(dst, vals, pkts, b)
		for i := range dst {
			if want := g.ValueDigest(vals[i], pkts[i], b); dst[i] != want {
				t.Fatalf("b=%d i=%d: column %#x, want %#x", b, i, dst[i], want)
			}
		}
	}
	for _, salt := range []uint64{0, 1, 5, 1 << 40} {
		g.ValueDigestFixedColumn(dst, pkts, salt)
		for i := range dst {
			if want := g.ValueDigest(salt, pkts[i], 64); dst[i] != want {
				t.Fatalf("salt=%d i=%d: column %#x, want %#x", salt, i, dst[i], want)
			}
		}
	}
}

// TestReservoirThresholdBounds pins the exported threshold at the table
// boundary and in the Below fallback range.
func TestReservoirThresholdBounds(t *testing.T) {
	if got := ReservoirThreshold(0); got != ^uint64(0) {
		t.Fatalf("hop 0 threshold %#x, want saturation", got)
	}
	if got := ReservoirThreshold(1); got != ^uint64(0) {
		t.Fatalf("hop 1 threshold %#x, want saturation", got)
	}
	for _, hop := range []int{2, 3, 64, 65, 66, 4096} {
		thr := ReservoirThreshold(hop)
		if want := Threshold(1 / float64(hop)); thr != want {
			t.Fatalf("hop %d threshold %#x, want %#x", hop, thr, want)
		}
		if thr == 0 || thr == ^uint64(0) {
			t.Fatalf("hop %d threshold %#x degenerate", hop, thr)
		}
	}
}
