package hash

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMix64Bijective(t *testing.T) {
	// splitmix64's finalizer is a bijection; sample-check no collisions on a
	// structured input set where a weak mixer would collide.
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 100000; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision: Mix64(%d) == Mix64(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	rng := NewRNG(1)
	var totalFlips, samples int
	for i := 0; i < 2000; i++ {
		x := rng.Uint64()
		bit := uint(rng.Intn(64))
		d := Mix64(x) ^ Mix64(x^(1<<bit))
		totalFlips += popcount(d)
		samples++
	}
	mean := float64(totalFlips) / float64(samples)
	if mean < 28 || mean > 36 {
		t.Fatalf("avalanche mean %f, want ~32", mean)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestSeedIndependence(t *testing.T) {
	a, b := Seed(1), Seed(2)
	same := 0
	for i := uint64(0); i < 1000; i++ {
		if a.Hash1(i) == b.Hash1(i) {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions across different seeds", same)
	}
}

func TestDeriveDistinct(t *testing.T) {
	s := Seed(42)
	seen := make(map[Seed]uint64)
	for tag := uint64(0); tag < 1000; tag++ {
		d := s.Derive(tag)
		if prev, ok := seen[d]; ok {
			t.Fatalf("Derive(%d) == Derive(%d)", tag, prev)
		}
		seen[d] = tag
	}
}

func TestHashDeterminism(t *testing.T) {
	s := Seed(7)
	if s.Hash2(3, 4) != s.Hash2(3, 4) {
		t.Fatal("Hash2 not deterministic")
	}
	if s.Hash2(3, 4) == s.Hash2(4, 3) {
		t.Fatal("Hash2 symmetric; arguments must be order-sensitive")
	}
	if s.Hash3(1, 2, 3) == s.Hash3(3, 2, 1) {
		t.Fatal("Hash3 symmetric; arguments must be order-sensitive")
	}
}

func TestHashBytesMatchesString(t *testing.T) {
	s := Seed(9)
	cases := []string{"", "a", "flow:10.0.0.1->10.0.0.2:80", "\x00\x01\x02"}
	for _, c := range cases {
		if s.HashBytes([]byte(c)) != s.HashString(c) {
			t.Fatalf("HashBytes != HashString for %q", c)
		}
	}
}

func TestUnitRange(t *testing.T) {
	f := func(x uint64) bool {
		u := Unit(x)
		return u >= 0 && u < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if Unit(0) != 0 {
		t.Fatalf("Unit(0) = %v, want 0", Unit(0))
	}
	if u := Unit(math.MaxUint64); u >= 1 {
		t.Fatalf("Unit(max) = %v, want < 1", u)
	}
}

func TestUnitUniform(t *testing.T) {
	// Chi-squared-ish bucket check on hashed sequential packet IDs: the
	// paper's coordination correctness depends on q(pkt) being uniform even
	// for adversarially regular inputs like consecutive sequence numbers.
	s := Seed(3)
	const buckets = 16
	const n = 160000
	var count [buckets]int
	for i := uint64(0); i < n; i++ {
		count[int(Unit(s.Hash1(i))*buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range count {
		if math.Abs(float64(c)-want) > want*0.05 {
			t.Fatalf("bucket %d has %d, want %.0f +/- 5%%", b, c, want)
		}
	}
}

func TestBelowEdges(t *testing.T) {
	if Below(0, 0) {
		t.Fatal("Below(_, 0) must be false")
	}
	if !Below(math.MaxUint64, 1) {
		t.Fatal("Below(_, 1) must be true")
	}
	if Below(math.MaxUint64, 0.999999) {
		t.Fatal("max hash should not be below p<1")
	}
	if !Below(0, 1e-18) {
		t.Fatal("zero hash should be below any positive p")
	}
}

func TestBelowFrequency(t *testing.T) {
	s := Seed(11)
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9} {
		hits := 0
		const n = 200000
		for i := uint64(0); i < n; i++ {
			if Below(s.Hash1(i), p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.01 {
			t.Fatalf("p=%v: empirical %v", p, got)
		}
	}
}

func TestInRangePartition(t *testing.T) {
	// A partition of [0,1) must assign every hash to exactly one cell.
	s := Seed(5)
	bounds := []float64{0, 0.3, 0.55, 0.8, 1}
	for i := uint64(0); i < 50000; i++ {
		h := s.Hash1(i)
		hits := 0
		for j := 0; j+1 < len(bounds); j++ {
			if InRange(h, bounds[j], bounds[j+1]) {
				hits++
			}
		}
		if hits != 1 {
			t.Fatalf("hash %d fell in %d cells", h, hits)
		}
	}
}

func TestBits(t *testing.T) {
	if Bits(^uint64(0), 1) != 1 {
		t.Fatal("1-bit digest of all-ones must be 1")
	}
	if Bits(^uint64(0), 8) != 0xff {
		t.Fatal("8-bit digest of all-ones must be 0xff")
	}
	if Bits(0x8000000000000000, 1) != 1 {
		t.Fatal("top bit must survive 1-bit extraction")
	}
	if Bits(0x7fffffffffffffff, 1) != 0 {
		t.Fatal("1-bit digest must come from the top bit")
	}
	if Bits(123, 64) != 123 {
		t.Fatal("64-bit extraction must be identity")
	}
	if Bits(123, 0) != 0 {
		t.Fatal("0-bit extraction must be 0")
	}
	f := func(h uint64) bool { return Bits(h, 4) < 16 && Bits(h, 16) < 1<<16 }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitsUniform(t *testing.T) {
	// b-bit digests must be uniform over 2^b values: the hashed-value
	// inference of §4.2 relies on a false-match probability of exactly 2^-b.
	s := Seed(21)
	const b = 4
	var count [1 << b]int
	const n = 160000
	for i := uint64(0); i < n; i++ {
		count[Bits(s.Hash1(i), b)]++
	}
	want := float64(n) / (1 << b)
	for v, c := range count {
		if math.Abs(float64(c)-want) > want*0.06 {
			t.Fatalf("digest %d: %d occurrences, want %.0f", v, c, want)
		}
	}
}
