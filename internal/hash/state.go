package hash

// RNG state extraction and restoration, used by the fleet-resize hand-off
// path: a flow's sketches derive their randomness deterministically from
// the recording seed, but once a sketch has consumed random draws its
// future output depends on the generator's *position* in the stream, not
// just the seed. Shipping a flow to a new collector therefore ships each
// sketch RNG's exact xoshiro256++ state, so the destination continues the
// very same random sequence and stays byte-identical to a collector that
// observed the whole stream locally.

// State returns the generator's full internal state. Restoring it with
// RestoreRNG yields a generator that produces the identical future
// sequence.
func (r *RNG) State() [4]uint64 { return r.s }

// RestoreRNG rebuilds a generator from a state captured by State. The
// state is used as-is (no splitmix64 expansion — it is already expanded).
func RestoreRNG(s [4]uint64) *RNG { return &RNG{s: s} }
