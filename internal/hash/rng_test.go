package hash

import (
	"math"
	"testing"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestRNGZeroSeedValid(t *testing.T) {
	r := NewRNG(0)
	var zero int
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zero++
		}
	}
	if zero > 1 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(6)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if m := sum / n; math.Abs(m-0.5) > 0.005 {
		t.Fatalf("mean %v, want ~0.5", m)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	r.Intn(0)
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(8)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(9)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if m := sum / n; math.Abs(m-1) > 0.02 {
		t.Fatalf("exponential mean %v, want ~1", m)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(10)
	var sum, sq float64
	const n = 200000
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sq += x * x
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal moments mean=%v var=%v", mean, variance)
	}
}

func TestRNGBool(t *testing.T) {
	r := NewRNG(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if got := float64(hits) / n; math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate %v", got)
	}
}

func TestRNGSplitIndependent(t *testing.T) {
	r := NewRNG(12)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatal("split streams identical")
	}
}

func BenchmarkMix64(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= Mix64(uint64(i))
	}
	sink = acc
}

func BenchmarkHash2(b *testing.B) {
	s := Seed(1)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= s.Hash2(uint64(i), uint64(i>>3))
	}
	sink = acc
}

func BenchmarkReservoirWinnerK25(b *testing.B) {
	g := NewGlobal(1)
	var acc int
	for i := 0; i < b.N; i++ {
		acc += g.ReservoirWinner(uint64(i), 25)
	}
	sink = uint64(acc)
}

func BenchmarkActVector(b *testing.B) {
	g := NewGlobal(1)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= g.ActVector(uint64(i), 64, 5)
	}
	sink = acc
}

var sink uint64
