package pipeline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/wire"
)

// TestConformanceWireSinkSnapshot is the end-to-end conformance suite for
// the streaming collector: a multi-query trace is batch-encoded, shipped
// through the wire format (marshal → unmarshal in transport-sized
// batches), ingested by the sharded sink, and queried three ways — via a
// pre-Close Snapshot, via the Close-d sink, and via a Snapshot taken
// after Close. Every answer of every query kind must be bit-identical to
// the serial Recording path that never saw the wire or the shards, for
// shard counts {1, 4, 16} and for raw, sketched, and sliding-window
// latency storage.
func TestConformanceWireSinkSnapshot(t *testing.T) {
	type variant struct {
		name        string
		sketchItems int
		winBuckets  int
		winSpan     uint64
	}
	for _, v := range []variant{
		{name: "raw"},
		{name: "sketched", sketchItems: 32},
		{name: "windowed", sketchItems: 32, winBuckets: 4, winSpan: 512},
	} {
		t.Run(v.name, func(t *testing.T) {
			eng, path, lat, util, freq, cnt := testPlan(t, 401)
			const (
				nFlows      = 24
				pktsPerFlow = 300
				k           = 6
				xferBatch   = 256 // packets per simulated switch→collector transfer
			)
			pkts := encodeWorkload(eng, 11, nFlows, pktsPerFlow, k)
			base := hash.Seed(0xC0FFEE)

			// The wire leg: marshal in transport-sized batches, unmarshal
			// at the "collector", and verify the stream arrives intact.
			var buf []byte
			rx := make([]core.PacketDigest, 0, len(pkts))
			for off := 0; off < len(pkts); off += xferBatch {
				end := min(off+xferBatch, len(pkts))
				var err error
				buf, err = wire.AppendMarshal(buf[:0], pkts[off:end])
				if err != nil {
					t.Fatal(err)
				}
				rx, err = wire.AppendUnmarshal(rx, buf)
				if err != nil {
					t.Fatal(err)
				}
			}
			if len(rx) != len(pkts) {
				t.Fatalf("wire leg delivered %d packets, want %d", len(rx), len(pkts))
			}
			for i := range pkts {
				if rx[i].Flow != pkts[i].Flow || rx[i].PktID != pkts[i].PktID ||
					rx[i].PathLen != pkts[i].PathLen || rx[i].Digest != pkts[i].Digest {
					t.Fatalf("wire leg corrupted packet %d: %+v -> %+v", i, pkts[i], rx[i])
				}
			}

			mkSerial := func() *core.Recording {
				rec, err := core.NewRecordingSeeded(eng, v.sketchItems, base)
				if err != nil {
					t.Fatal(err)
				}
				rec.WindowBuckets = v.winBuckets
				rec.WindowSpan = v.winSpan
				return rec
			}
			serial := mkSerial()
			if err := serial.RecordBatch(pkts); err != nil {
				t.Fatal(err)
			}

			for _, shards := range []int{1, 4, 16} {
				sink, err := NewSink(eng, Config{
					Shards: shards, BatchSize: 64, SketchItems: v.sketchItems,
					WindowBuckets: v.winBuckets, WindowSpan: v.winSpan, Base: base})
				if err != nil {
					t.Fatal(err)
				}
				sink.Ingest(rx)
				sink.Flush()
				// Snapshot while the workers are still live: answerable
				// without Close, and already complete because Flush
				// dispatched everything from this goroutine.
				snap := sink.Snapshot()
				// Sliding-window quantile queries advance sketch RNG
				// state, so each comparison pairs a fresh serial clone
				// with a surface queried exactly once.
				for f := 0; f < nFlows; f++ {
					flow := core.FlowKey(uint64(f)*2654435761 + 1)
					compareFlow(t, shards, serial.Clone(), snap, flow, k, path, lat, util, freq, cnt)
				}
				if err := sink.Close(); err != nil {
					t.Fatal(err)
				}
				if got := sink.TrackedFlows(); got != serial.TrackedFlows() {
					t.Fatalf("shards=%d: sink tracks %d flows, serial %d", shards, got, serial.TrackedFlows())
				}
				for f := 0; f < nFlows; f++ {
					flow := core.FlowKey(uint64(f)*2654435761 + 1)
					compareFlow(t, shards, serial.Clone(), sink.Recording(flow).Clone(), flow, k, path, lat, util, freq, cnt)
				}
				// Snapshot after Close still serves, from the quiesced
				// recordings — and Merged folds the shards into a single
				// Recording with every answer intact.
				post := sink.Snapshot()
				merged, err := post.Merged()
				if err != nil {
					t.Fatal(err)
				}
				if got := merged.TrackedFlows(); got != serial.TrackedFlows() {
					t.Fatalf("shards=%d: merged tracks %d flows, serial %d", shards, got, serial.TrackedFlows())
				}
				for f := 0; f < nFlows; f++ {
					flow := core.FlowKey(uint64(f)*2654435761 + 1)
					compareFlow(t, shards, serial.Clone(), merged.Clone(), flow, k, path, lat, util, freq, cnt)
				}
			}
		})
	}
}
