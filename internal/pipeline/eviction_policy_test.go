package pipeline

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/hash"
)

// policyModel is the reference implementation the real policies are
// checked against: a plain ordered slice, no free lists, no intrusive
// links — slow and obviously correct.
type policyModel struct {
	order []core.FlowKey // LRU/idle: recency (front = most recent); FIFO: admission (front = newest)
	last  map[core.FlowKey]uint64
	kind  string // "lru", "fifo", "idle"
	cap   int
	tmo   uint64
}

func (m *policyModel) touch(flow core.FlowKey, now uint64) []Eviction {
	if _, ok := m.last[flow]; ok {
		m.last[flow] = now
		if m.kind != "fifo" { // admission order is sticky under FIFO
			for i, f := range m.order {
				if f == flow {
					m.order = append(m.order[:i], m.order[i+1:]...)
					break
				}
			}
			m.order = append([]core.FlowKey{flow}, m.order...)
		}
	} else {
		m.last[flow] = now
		m.order = append([]core.FlowKey{flow}, m.order...)
	}
	var out []Eviction
	if m.kind == "idle" {
		for len(m.order) > 0 {
			tail := m.order[len(m.order)-1]
			if now-m.last[tail] <= m.tmo {
				break
			}
			out = append(out, Eviction{Flow: tail, Reason: EvictIdle, LastSeen: m.last[tail]})
			m.order = m.order[:len(m.order)-1]
			delete(m.last, tail)
		}
		return out
	}
	for len(m.order) > m.cap {
		tail := m.order[len(m.order)-1]
		out = append(out, Eviction{Flow: tail, Reason: EvictCapacity, LastSeen: m.last[tail]})
		m.order = m.order[:len(m.order)-1]
		delete(m.last, tail)
	}
	return out
}

// TestPolicyAgainstModel drives each built-in policy and its reference
// model with the same randomized flow sequence and requires identical
// eviction sequences (flow, reason, and last-seen clock) at every step,
// plus the structural invariants: the touched flow is never a victim, the
// live-flow count respects the cap, and a victim is really removed (its
// next arrival re-admits it).
func TestPolicyAgainstModel(t *testing.T) {
	cases := []struct {
		name  string
		mk    func() EvictionPolicy
		model func() *policyModel
	}{
		{"lru-cap8", func() EvictionPolicy { return NewLRU(8) },
			func() *policyModel { return &policyModel{kind: "lru", cap: 8, last: map[core.FlowKey]uint64{}} }},
		{"lru-cap1", func() EvictionPolicy { return NewLRU(1) },
			func() *policyModel { return &policyModel{kind: "lru", cap: 1, last: map[core.FlowKey]uint64{}} }},
		{"maxflows-cap8", func() EvictionPolicy { return NewMaxFlows(8) },
			func() *policyModel { return &policyModel{kind: "fifo", cap: 8, last: map[core.FlowKey]uint64{}} }},
		{"idle-20", func() EvictionPolicy { return NewIdleTimeout(20) },
			func() *policyModel {
				return &policyModel{kind: "idle", tmo: 20, cap: 1 << 30, last: map[core.FlowKey]uint64{}}
			}},
		{"idle-1", func() EvictionPolicy { return NewIdleTimeout(1) },
			func() *policyModel {
				return &policyModel{kind: "idle", tmo: 1, cap: 1 << 30, last: map[core.FlowKey]uint64{}}
			}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pol, model := tc.mk(), tc.model()
			rng := hash.NewRNG(77)
			evicted := map[core.FlowKey]int{} // live evictions since last admission
			var vict []Eviction
			var now uint64
			for step := 0; step < 20000; step++ {
				// Skewed flow choice: a few hot flows, a long random tail.
				var flow core.FlowKey
				if rng.Bool(0.7) {
					flow = core.FlowKey(rng.Intn(6) + 1)
				} else {
					flow = core.FlowKey(rng.Intn(64) + 1)
				}
				now++
				vict = pol.Touch(flow, now, vict[:0])
				want := model.touch(flow, now)
				if len(vict) != len(want) {
					t.Fatalf("step %d: %d victims, model wants %d (%v vs %v)", step, len(vict), len(want), vict, want)
				}
				for i := range vict {
					if vict[i] != want[i] {
						t.Fatalf("step %d victim %d: %+v, model wants %+v", step, i, vict[i], want[i])
					}
					if vict[i].Flow == flow {
						t.Fatalf("step %d: policy evicted the flow just touched", step)
					}
					if evicted[vict[i].Flow] != 0 {
						t.Fatalf("step %d: flow %d evicted twice without re-admission", step, vict[i].Flow)
					}
					evicted[vict[i].Flow]++
				}
				delete(evicted, flow) // touching (re-)admits
				if pol.Flows() != len(model.last) {
					t.Fatalf("step %d: policy tracks %d flows, model %d", step, pol.Flows(), len(model.last))
				}
			}
		})
	}
}

// TestPolicyTouchZeroAlloc pins the steady-state cost of the policy
// bookkeeping: once the flow set is stable, Touch allocates nothing.
func TestPolicyTouchZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name string
		pol  EvictionPolicy
	}{
		{"lru", NewLRU(64)},
		{"maxflows", NewMaxFlows(64)},
		{"idle", NewIdleTimeout(1 << 20)},
	} {
		vict := make([]Eviction, 0, 8)
		var now uint64
		for f := 0; f < 64; f++ { // warm the table and the free list
			now++
			vict = tc.pol.Touch(core.FlowKey(f+1), now, vict[:0])
		}
		allocs := testing.AllocsPerRun(1000, func() {
			now++
			vict = tc.pol.Touch(core.FlowKey(int(now)%64+1), now, vict[:0])
		})
		if allocs != 0 {
			t.Errorf("%s: steady-state Touch allocates %.1f/op, want 0", tc.name, allocs)
		}
	}
}

// shardModels predicts each shard's eviction sequence by replaying the
// ingest stream through per-shard reference models, using the sink's own
// flow→shard mapping.
func shardModels(pkts []core.PacketDigest, shards int, mk func() *policyModel) [][]Eviction {
	models := make([]*policyModel, shards)
	clocks := make([]uint64, shards)
	out := make([][]Eviction, shards)
	for i := range models {
		models[i] = mk()
	}
	for i := range pkts {
		sh := int(hash.Mix64(uint64(pkts[i].Flow)) % uint64(shards))
		clocks[sh]++
		out[sh] = append(out[sh], models[sh].touch(pkts[i].Flow, clocks[sh])...)
	}
	return out
}

// TestSinkEvictionCallback runs bounded sinks over a real encoded stream
// and checks the end-to-end eviction contract: the callback receives
// exactly the model-predicted eviction sequence per shard (every evicted
// flow, exactly once per admission, in order), the flow's state is still
// queryable inside the callback, and the per-shard flow tables never
// exceed the cap.
func TestSinkEvictionCallback(t *testing.T) {
	eng, _, lat, _, _, _ := testPlan(t, 701)
	const (
		nFlows = 48
		k      = 6
		cap    = 8
	)
	pkts := encodeWorkload(eng, 19, nFlows, 200, k)
	for _, shards := range []int{1, 3} {
		want := shardModels(pkts, shards, func() *policyModel {
			return &policyModel{kind: "lru", cap: cap, last: map[core.FlowKey]uint64{}}
		})

		var mu sync.Mutex
		got := make([][]Eviction, shards)
		recOf := map[*core.Recording]int{}
		sink, err := NewSink(eng, Config{
			Shards: shards, BatchSize: 32, SketchItems: 16, Base: 5,
			Policy: func() EvictionPolicy { return NewLRU(cap) },
			OnEvict: func(ev Eviction, rec *core.Recording) {
				// The flow's state must still be present and queryable at
				// callback time — it is dropped only after we return.
				live := rec.HasFlow(ev.Flow)
				for hop := 1; hop <= k; hop++ {
					rec.LatencySamples(lat, ev.Flow, hop)
				}
				mu.Lock()
				defer mu.Unlock()
				if !live {
					t.Errorf("flow %d already dropped when its eviction callback ran", ev.Flow)
				}
				got[recOf[rec]] = append(got[recOf[rec]], ev)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, sh := range sink.shards {
			recOf[sh.rec] = i
		}
		sink.Ingest(pkts)
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("shards=%d shard %d: %d evictions, model wants %d", shards, i, len(got[i]), len(want[i]))
			}
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("shards=%d shard %d eviction %d: %+v, model wants %+v", shards, i, j, got[i][j], want[i][j])
				}
			}
			if n := sink.shards[i].rec.TrackedFlows(); n > cap {
				t.Fatalf("shards=%d shard %d: %d tracked flows exceed cap %d", shards, i, n, cap)
			}
			if n := sink.shards[i].pol.Flows(); n != sink.shards[i].rec.TrackedFlows() {
				t.Fatalf("shards=%d shard %d: policy tracks %d flows, recording %d", shards, i, n, sink.shards[i].rec.TrackedFlows())
			}
		}
	}
}

// TestSinkIdleFinalizedOnce checks the idle policy end to end: a flow
// that goes quiet is finalized exactly once per incarnation — once after
// it first goes idle, gone from the recording until it re-arrives, and
// once more when the re-arrived incarnation goes idle again. Background
// flows that never pause are never finalized.
func TestSinkIdleFinalizedOnce(t *testing.T) {
	eng, _, _, _, _, _ := testPlan(t, 801)
	const k = 6
	quiet := encodeWorkload(eng, 23, 1, 40, k) // one flow that then goes silent
	idleFlow := quiet[0].Flow
	// Background traffic keeps the shard clock ticking; drop any packet
	// that happens to share the idle flow's key.
	background := encodeWorkload(eng, 29, 10, 80, k)
	bg := background[:0]
	for _, p := range background {
		if p.Flow != idleFlow {
			bg = append(bg, p)
		}
	}

	var mu sync.Mutex
	finalized := map[core.FlowKey]int{}
	callbacks, stillLive := 0, 0
	sink, err := NewSink(eng, Config{
		Shards: 1, BatchSize: 16, Base: 3,
		Policy: func() EvictionPolicy { return NewIdleTimeout(100) },
		OnEvict: func(ev Eviction, rec *core.Recording) {
			mu.Lock()
			defer mu.Unlock()
			finalized[ev.Flow]++
			callbacks++
			if rec.HasFlow(ev.Flow) {
				stillLive++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sink.Ingest(quiet)
	sink.Ingest(bg) // idleFlow expires ~100 packets in
	sink.Ingest(quiet)
	sink.Ingest(bg) // the re-arrived incarnation expires again
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if finalized[idleFlow] != 2 {
		t.Fatalf("idle flow finalized %d times across 2 idle incarnations, want 2", finalized[idleFlow])
	}
	if stillLive != callbacks {
		t.Fatalf("%d of %d callbacks saw live state, want all", stillLive, callbacks)
	}
	for f, n := range finalized {
		if f != idleFlow && n != 0 {
			t.Fatalf("background flow %d finalized %d times; it was never idle", f, n)
		}
	}
	// The second expiry already dropped the flow: its state is gone, and
	// the policy and recording agree on the live set.
	if sink.Recording(idleFlow).HasFlow(idleFlow) {
		t.Fatal("idle flow still has state after its second expiry")
	}
	if sink.shards[0].pol.Flows() != sink.shards[0].rec.TrackedFlows() {
		t.Fatal("recording and policy disagree on live flows")
	}
}
