package pipeline

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/sketch"
)

// testPlan compiles a plan covering every query kind under a 32-bit
// budget (mirrors core's combined test plan).
func testPlan(t testing.TB, master hash.Seed) (*core.Engine, *core.PathQuery, *core.LatencyQuery, *core.UtilQuery, *core.FreqQuery, *core.CountQuery) {
	t.Helper()
	universe := make([]uint64, 64)
	for i := range universe {
		universe[i] = uint64(0xAB00 + i*3)
	}
	cfg, err := core.DefaultPathConfig(4, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	path, err := core.NewPathQuery("path", cfg, 1, master, universe)
	if err != nil {
		t.Fatal(err)
	}
	lat, err := core.NewLatencyQuery("lat", 8, 0.04, 7.0/8, master)
	if err != nil {
		t.Fatal(err)
	}
	util, err := core.NewUtilQuery("util", 8, 0.025, 1.0/8, 1000, master)
	if err != nil {
		t.Fatal(err)
	}
	freq, err := core.NewFreqQuery("freq", 4, 1.0/4, master)
	if err != nil {
		t.Fatal(err)
	}
	cnt, err := core.NewCountQuery("cnt", 4, 0.5, 1.0/8, master)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.Compile([]core.Query{path, lat, util, freq, cnt}, 32, master.Derive(9))
	if err != nil {
		t.Fatal(err)
	}
	return eng, path, lat, util, freq, cnt
}

// encodeWorkload produces an interleaved multi-flow digest stream through
// the batch encode path: nFlows flows, k hops, pktsPerFlow packets each,
// round-robin interleaved (the adversarial order for a sink).
func encodeWorkload(eng *core.Engine, seed uint64, nFlows, pktsPerFlow, k int) []core.PacketDigest {
	rng := hash.NewRNG(seed)
	pkts := make([]core.PacketDigest, 0, nFlows*pktsPerFlow)
	for p := 0; p < pktsPerFlow; p++ {
		for f := 0; f < nFlows; f++ {
			pkts = append(pkts, core.PacketDigest{
				// Spread keys so shards get uneven, realistic loads.
				Flow:    core.FlowKey(uint64(f)*2654435761 + 1),
				PktID:   rng.Uint64(),
				PathLen: k,
			})
		}
	}
	vals := make([]core.HopValues, len(pkts))
	for hop := 1; hop <= k; hop++ {
		for i := range pkts {
			h := hash.Seed(42).Hash2(pkts[i].PktID, uint64(hop))
			vals[i] = core.HopValues{
				SwitchID:   0xAB00 + (h%16)*3,
				LatencyNs:  1000 + h%100000,
				Util:       1 + h%1500,
				FreqValue:  h % 16,
				CountFired: h % 3,
			}
		}
		eng.EncodeHopBatch(hop, pkts, vals)
	}
	return pkts
}

// TestShardedSinkMatchesSerial is the determinism acceptance test: for a
// fixed seed, every query answer from an N-shard sink is bit-identical to
// the serial Recording, for N in {1, 2, 3, 8}, with raw and sketched
// latency storage.
func TestShardedSinkMatchesSerial(t *testing.T) {
	for _, sketchItems := range []int{0, 32} {
		eng, path, lat, util, freq, cnt := testPlan(t, 101)
		const (
			nFlows      = 24
			pktsPerFlow = 400
			k           = 6
		)
		pkts := encodeWorkload(eng, 7, nFlows, pktsPerFlow, k)
		base := hash.Seed(0xD1CE)

		serial, err := core.NewRecordingSeeded(eng, sketchItems, base)
		if err != nil {
			t.Fatal(err)
		}
		if err := serial.RecordBatch(pkts); err != nil {
			t.Fatal(err)
		}

		for _, shards := range []int{1, 2, 3, 8} {
			sink, err := NewSink(eng, Config{
				Shards: shards, BatchSize: 64, SketchItems: sketchItems, Base: base})
			if err != nil {
				t.Fatal(err)
			}
			sink.Ingest(pkts)
			if err := sink.Close(); err != nil {
				t.Fatal(err)
			}
			if got := sink.TrackedFlows(); got != serial.TrackedFlows() {
				t.Fatalf("shards=%d: tracked %d flows, serial %d", shards, got, serial.TrackedFlows())
			}
			for f := 0; f < nFlows; f++ {
				flow := core.FlowKey(uint64(f)*2654435761 + 1)
				compareFlow(t, shards, serial, sink, flow, k, path, lat, util, freq, cnt)
			}
		}
	}
}

// queryReader is the per-flow answer surface shared by *core.Recording,
// *Sink, and *Snapshot — the three places a collector answer can come
// from; the conformance suite compares them pairwise.
type queryReader interface {
	Path(*core.PathQuery, core.FlowKey) ([]uint64, bool)
	LatencySamples(*core.LatencyQuery, core.FlowKey, int) int
	LatencyQuantile(*core.LatencyQuery, core.FlowKey, int, float64) (float64, error)
	FrequentValues(*core.FreqQuery, core.FlowKey, int, float64) []sketch.HeavyHitter
	UtilSeries(*core.UtilQuery, core.FlowKey) []float64
	CountSeries(*core.CountQuery, core.FlowKey) []float64
}

var (
	_ queryReader = (*core.Recording)(nil)
	_ queryReader = (*Sink)(nil)
	_ queryReader = (*Snapshot)(nil)
)

func compareFlow(t *testing.T, shards int, serial queryReader, sink queryReader, flow core.FlowKey, k int,
	path *core.PathQuery, lat *core.LatencyQuery, util *core.UtilQuery, freq *core.FreqQuery, cnt *core.CountQuery) {
	t.Helper()
	pa, oka := serial.Path(path, flow)
	pb, okb := sink.Path(path, flow)
	if oka != okb || len(pa) != len(pb) {
		t.Fatalf("shards=%d flow %d: path (%v,%d) vs (%v,%d)", shards, flow, oka, len(pa), okb, len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("shards=%d flow %d hop %d: path %d vs %d", shards, flow, i+1, pa[i], pb[i])
		}
	}
	for hop := 1; hop <= k; hop++ {
		if na, nb := serial.LatencySamples(lat, flow, hop), sink.LatencySamples(lat, flow, hop); na != nb {
			t.Fatalf("shards=%d flow %d hop %d: %d vs %d samples", shards, flow, hop, na, nb)
		}
		if serial.LatencySamples(lat, flow, hop) > 0 {
			for _, phi := range []float64{0.5, 0.99} {
				qa, ea := serial.LatencyQuantile(lat, flow, hop, phi)
				qb, eb := sink.LatencyQuantile(lat, flow, hop, phi)
				if (ea == nil) != (eb == nil) || (ea == nil && qa != qb) {
					t.Fatalf("shards=%d flow %d hop %d phi %v: %v vs %v", shards, flow, hop, phi, qa, qb)
				}
			}
		}
		ha := serial.FrequentValues(freq, flow, hop, 0.2)
		hb := sink.FrequentValues(freq, flow, hop, 0.2)
		if len(ha) != len(hb) {
			t.Fatalf("shards=%d flow %d hop %d: %d vs %d hitters", shards, flow, hop, len(ha), len(hb))
		}
		for i := range ha {
			if ha[i] != hb[i] {
				t.Fatalf("shards=%d flow %d hop %d: %+v vs %+v", shards, flow, hop, ha[i], hb[i])
			}
		}
	}
	ua, ub := serial.UtilSeries(util, flow), sink.UtilSeries(util, flow)
	if len(ua) != len(ub) {
		t.Fatalf("shards=%d flow %d: util %d vs %d", shards, flow, len(ua), len(ub))
	}
	for i := range ua {
		if ua[i] != ub[i] {
			t.Fatalf("shards=%d flow %d util[%d]: %v vs %v", shards, flow, i, ua[i], ub[i])
		}
	}
	ca, cb := serial.CountSeries(cnt, flow), sink.CountSeries(cnt, flow)
	if len(ca) != len(cb) {
		t.Fatalf("shards=%d flow %d: count %d vs %d", shards, flow, len(ca), len(cb))
	}
	for i := range ca {
		if ca[i] != cb[i] && !(math.IsNaN(ca[i]) && math.IsNaN(cb[i])) {
			t.Fatalf("shards=%d flow %d count[%d]: %v vs %v", shards, flow, i, ca[i], cb[i])
		}
	}
}

// TestSinkRunToRunDeterminism re-runs the same sharded ingest twice and
// requires identical answers — goroutine scheduling must not leak into
// results.
func TestSinkRunToRunDeterminism(t *testing.T) {
	eng, path, lat, _, _, _ := testPlan(t, 201)
	pkts := encodeWorkload(eng, 9, 16, 300, 6)
	base := hash.Seed(0xBEEF)
	run := func() *Sink {
		sink, err := NewSink(eng, Config{Shards: 4, BatchSize: 32, SketchItems: 24, Base: base})
		if err != nil {
			t.Fatal(err)
		}
		sink.Ingest(pkts)
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		return sink
	}
	a, b := run(), run()
	for f := 0; f < 16; f++ {
		flow := core.FlowKey(uint64(f)*2654435761 + 1)
		va, oka := a.Path(path, flow)
		vb, okb := b.Path(path, flow)
		if oka != okb {
			t.Fatalf("flow %d: decode %v vs %v", flow, oka, okb)
		}
		for i := range va {
			if va[i] != vb[i] {
				t.Fatalf("flow %d hop %d: %d vs %d", flow, i+1, va[i], vb[i])
			}
		}
		for hop := 1; hop <= 6; hop++ {
			if a.LatencySamples(lat, flow, hop) == 0 {
				continue
			}
			qa, _ := a.LatencyQuantile(lat, flow, hop, 0.5)
			qb, _ := b.LatencyQuantile(lat, flow, hop, 0.5)
			if qa != qb {
				t.Fatalf("flow %d hop %d: median %v vs %v across runs", flow, hop, qa, qb)
			}
		}
	}
}

// TestSinkRejectsPolicyWithMaxFlows pins the config guard: Recording-level
// MaxFlows evictions would bypass OnEvict and desync the policy's table.
func TestSinkRejectsPolicyWithMaxFlows(t *testing.T) {
	eng, _, _, _, _, _ := testPlan(t, 901)
	_, err := NewSink(eng, Config{
		MaxFlows: 10,
		Policy:   func() EvictionPolicy { return NewLRU(10) },
	})
	if err == nil {
		t.Fatal("NewSink accepted Policy together with MaxFlows")
	}
	_, err = NewSink(eng, Config{
		MaxFlows: 10,
		OnEvict:  func(Eviction, *core.Recording) {},
	})
	if err == nil {
		t.Fatal("NewSink accepted OnEvict together with MaxFlows (those evictions never run the callback)")
	}
}

// TestSinkErrSurfacesShardFailure checks a long-running collector can see
// a shard's recording error without Close: a packet with an impossible
// path length fails its shard's decoder, Err() reports it mid-stream,
// Snapshot keeps serving the healthy shards, and Close returns it too.
func TestSinkErrSurfacesShardFailure(t *testing.T) {
	eng, _, _, _, _, _ := testPlan(t, 1001)
	pkts := encodeWorkload(eng, 31, 8, 50, 6)
	sink, err := NewSink(eng, Config{Shards: 2, BatchSize: 8, Base: 1})
	if err != nil {
		t.Fatal(err)
	}
	sink.Ingest(pkts[:100])
	// Fresh flows force decoder construction; path length 65 is beyond
	// the decoder's [1, 64] domain. Several packets so at least one falls
	// in a path-carrying query set (deterministic for this seed).
	for i := 0; i < 20; i++ {
		bad := pkts[i]
		bad.Flow = core.FlowKey(0xDEAD0000 + uint64(i))
		bad.PathLen = 65
		sink.Ingest([]core.PacketDigest{bad})
	}
	sink.Flush()
	// The failure surfaces once the owning worker reaches the packet.
	snap := sink.Snapshot() // forces the workers to drain their queues
	if snap == nil {
		t.Fatal("nil snapshot")
	}
	if sink.Err() == nil {
		t.Fatal("Err() nil after a shard hit an impossible path length")
	}
	if err := sink.Close(); err == nil {
		t.Fatal("Close returned nil after a shard failure")
	}
}

// TestSinkFlushAndReuse checks Flush mid-stream is safe and Close is
// idempotent.
func TestSinkFlushAndReuse(t *testing.T) {
	eng, path, _, _, _, _ := testPlan(t, 301)
	pkts := encodeWorkload(eng, 3, 8, 500, 6)
	sink, err := NewSink(eng, Config{Shards: 2, BatchSize: 128, Base: 1})
	if err != nil {
		t.Fatal(err)
	}
	half := len(pkts) / 2
	sink.Ingest(pkts[:half])
	sink.Flush()
	sink.Ingest(pkts[half:])
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	decoded := 0
	for f := 0; f < 8; f++ {
		flow := core.FlowKey(uint64(f)*2654435761 + 1)
		if _, ok := sink.Path(path, flow); ok {
			decoded++
		}
	}
	if decoded == 0 {
		t.Fatal("no flow decoded its path through the sharded sink")
	}
}

// TestBarrierMakesStateReadable pins Barrier's contract: after Ingest +
// Barrier the ingester may read shard Recordings directly, and the
// observed per-flow state matches a serial Recording packet for packet —
// the synchronous read decode-progress harnesses rely on.
func TestBarrierMakesStateReadable(t *testing.T) {
	master := hash.Seed(41)
	eng, path, _, _, _, _ := testPlan(t, master)
	pkts := encodeWorkload(eng, 5, 6, 300, 6)

	for _, shards := range []int{1, 4} {
		sink, err := NewSink(eng, Config{Shards: shards, SketchItems: 16, Base: master.Derive(7)})
		if err != nil {
			t.Fatal(err)
		}
		serial, err := core.NewRecordingSeeded(eng, 16, master.Derive(7))
		if err != nil {
			t.Fatal(err)
		}
		for i := range pkts {
			sink.Ingest(pkts[i : i+1])
			if err := serial.RecordBatch(pkts[i : i+1]); err != nil {
				t.Fatal(err)
			}
			if i%37 != 0 {
				continue // barrier at irregular points, not every packet
			}
			sink.Barrier()
			flow := pkts[i].Flow
			want := serial.PathDecoder(path, flow)
			got := sink.Recording(flow).PathDecoder(path, flow)
			if (want == nil) != (got == nil) {
				t.Fatalf("shards=%d pkt %d: decoder presence diverged", shards, i)
			}
			if want != nil && (want.Done() != got.Done() || want.Observed() != got.Observed()) {
				t.Fatalf("shards=%d pkt %d: decode progress diverged: serial done=%v obs=%d, sink done=%v obs=%d",
					shards, i, want.Done(), want.Observed(), got.Done(), got.Observed())
			}
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		sink.Barrier() // no-op after Close, must not hang
	}
}
