package pipeline

import (
	"repro/internal/core"
)

// This file is the sink's durability hook. The sink itself stays a pure
// in-memory structure; a Persister observes the three events a durable
// tier needs — the ingested stream, evictions, and checkpoint barriers —
// without touching the hot path when none is attached (one atomic load
// per batch).

// Persister receives the sink's durable events. internal/segstore's
// Writer is the production implementation: it copies each event into a
// bounded queue and applies it on its own goroutine, so the only way
// persistence slows ingestion is genuine backpressure (the queue is
// full because the disk is behind).
//
// Contract:
//
//   - PersistIngest runs on an ingester goroutine for every chunk of
//     packets bound for one shard, under that shard's stripe lock and
//     before any of the chunk reaches a worker. The lock makes the
//     guarantee *per-shard order*: restrict the sequence of PersistIngest
//     calls to any one shard's packets and you get exactly the order that
//     shard's worker records them in. That is deliberately weaker than
//     the global-arrival-order property the serial sink used to provide —
//     with many connections ingesting concurrently there is no global
//     order — and it is still exactly what recovery needs: replaying the
//     log re-routes every packet to the same shard (routing is a pure
//     function of the flow key) and reproduces each shard's stream, and
//     with it every flow's stream, verbatim. Implementations must accept
//     concurrent calls (segstore.Writer's bounded channel already does);
//     the slice is only valid during the call — implementations copy.
//   - PersistEvict runs on the owning shard's worker goroutine under the
//     same rules as Config.OnEvict (rec still holds the flow; do not
//     retain rec; do not call Sink methods), immediately before OnEvict.
//   - PersistCheckpoint runs on each shard's worker goroutine during
//     Sink.Checkpoint, after the shard drained everything dispatched to
//     it, so the stats describe a quiescent shard.
type Persister interface {
	PersistIngest(batch []core.PacketDigest)
	PersistEvict(shard int, ev Eviction, rec *core.Recording)
	PersistCheckpoint(cp CheckpointStats)
}

// CheckpointStats is one shard's state at a checkpoint barrier.
type CheckpointStats struct {
	// Round numbers the Checkpoint call (1, 2, …) within this sink's
	// lifetime; every shard reports once per round.
	Round uint64
	// Shard / Shards locate this report within the round.
	Shard  int
	Shards int
	// Packets is the shard's dispatched-packet counter; the barrier
	// guarantees all of them are recorded.
	Packets uint64
	// Flows is the shard's live flow count.
	Flows int
}

// persistBox wraps the interface so it fits an atomic.Pointer.
type persistBox struct{ p Persister }

// SetPersister attaches (or, with nil, detaches) the sink's persister.
// Attach after any recovery replay — an attached persister would re-log
// every replayed batch — and before live ingestion starts. The pointer
// is atomic, so the swap itself is safe at any time; events racing the
// swap may go to either persister.
func (s *Sink) SetPersister(p Persister) {
	if p == nil {
		s.persist.Store(nil)
		return
	}
	s.persist.Store(&persistBox{p: p})
}

// persister returns the attached Persister, or nil.
func (s *Sink) persister() Persister {
	if b := s.persist.Load(); b != nil {
		return b.p
	}
	return nil
}

// ckptReq asks one worker to drain, persist its checkpoint, and reply.
type ckptReq struct {
	round uint64
	reply chan<- struct{}
}

// Checkpoint flushes every shard and runs a checkpoint barrier: each
// worker drains everything dispatched to it, reports its CheckpointStats
// to the persister (if one is attached), and replies. When Checkpoint
// returns, every packet ingested before the call is recorded AND its
// checkpoint record is ordered after all of those packets' PersistIngest
// events — the ordering the recovery cross-check relies on. It shares
// Ingest's single-ingester contract, and callers wanting the cross-check
// property must also quiesce concurrent IngestStage callers for the
// duration (the collector holds its ingest gate exclusively): a chunk
// landing mid-barrier would count toward no round. Returns the round
// number. After Close it is a no-op.
func (s *Sink) Checkpoint() uint64 {
	if s.closed {
		return s.ckptRound
	}
	s.ckptRound++
	for _, sh := range s.shards {
		s.flushShard(sh)
	}
	// Fan out first so the shards drain and persist concurrently.
	for _, sh := range s.shards {
		sh.ckpt <- ckptReq{round: s.ckptRound, reply: s.barrier}
	}
	for range s.shards {
		<-s.barrier
	}
	return s.ckptRound
}
