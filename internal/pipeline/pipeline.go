// Package pipeline is the multi-core sink of the reproduction: it shards
// sink-captured packets by flow key across a pool of workers, each owning
// a private core.Recording, so heavy digest streams ingest in parallel
// while every per-flow answer stays bit-identical to the serial path.
//
// Determinism argument: a flow's key maps to exactly one shard, each shard
// is a single worker draining a FIFO, and Ingest preserves arrival order,
// so every flow's digests are recorded in arrival order by one goroutine.
// core.Recording derives all sketch randomness from a (query, flow, hop)
// seed rather than arrival order, so a flow's state depends only on its
// own digest stream and the shared seed base — not on how flows interleave
// or how many shards exist. Hence Sink(n shards) ≡ Sink(1) ≡ serial
// Recording, bit for bit, for any n.
package pipeline

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/sketch"
)

// Config shapes a sharded sink.
type Config struct {
	// Shards is the worker count; values < 1 mean 1 (serial in a worker).
	Shards int
	// BatchSize is how many packets buffer per shard before dispatch
	// (default 256). Smaller values lower latency, larger values lower
	// channel traffic.
	BatchSize int
	// QueueDepth is the per-shard channel capacity in batches (default 4).
	QueueDepth int
	// Base seeds every shard's Recording identically; required for
	// cross-shard-count reproducibility.
	Base hash.Seed
	// SketchItems / WindowBuckets / WindowSpan / FreqCounters / MaxFlows
	// mirror the core.Recording knobs. MaxFlows bounds flows *per shard*
	// (eviction is a per-shard LRU, so with MaxFlows > 0 the sharded and
	// serial paths may evict different flows — leave it 0 when exact
	// serial equivalence matters).
	SketchItems   int
	WindowBuckets int
	WindowSpan    uint64
	FreqCounters  int
	MaxFlows      int
}

// Sink is the sharded Recording Module. Ingest/Record feed it; answers
// (Path, LatencyQuantile, …) are valid only after Close has drained the
// workers.
type Sink struct {
	engine *core.Engine
	cfg    Config
	shards []*shard
	wg     sync.WaitGroup
	closed bool
}

type shard struct {
	ch  chan []core.PacketDigest
	rec *core.Recording
	buf []core.PacketDigest
	err error
}

// NewSink builds a sharded sink over an engine and starts its workers.
func NewSink(engine *core.Engine, cfg Config) (*Sink, error) {
	if engine == nil {
		return nil, fmt.Errorf("pipeline: nil engine")
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 256
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 4
	}
	s := &Sink{engine: engine, cfg: cfg, shards: make([]*shard, cfg.Shards)}
	for i := range s.shards {
		rec, err := core.NewRecordingSeeded(engine, cfg.SketchItems, cfg.Base)
		if err != nil {
			return nil, err
		}
		if cfg.WindowBuckets > 0 {
			rec.WindowBuckets = cfg.WindowBuckets
			rec.WindowSpan = cfg.WindowSpan
		}
		if cfg.FreqCounters > 0 {
			rec.FreqCounters = cfg.FreqCounters
		}
		rec.MaxFlows = cfg.MaxFlows
		s.shards[i] = &shard{
			ch:  make(chan []core.PacketDigest, cfg.QueueDepth),
			rec: rec,
			buf: make([]core.PacketDigest, 0, cfg.BatchSize),
		}
	}
	s.start()
	return s, nil
}

// ShardCount returns the number of shards/workers.
func (s *Sink) ShardCount() int { return len(s.shards) }

// shardOf maps a flow to its owning shard. Mix64 keeps sequential test
// keys balanced; any pure function of the flow key preserves determinism.
func (s *Sink) shardOf(flow core.FlowKey) *shard {
	return s.shards[hash.Mix64(uint64(flow))%uint64(len(s.shards))]
}

// Record buffers one packet for its flow's shard.
func (s *Sink) Record(flow core.FlowKey, k int, pktID, digest uint64) {
	s.ingestOne(core.PacketDigest{Flow: flow, PktID: pktID, PathLen: k, Digest: digest})
}

// Ingest buffers a batch of packets, routing each to its flow's shard and
// dispatching any shard buffer that fills. It must not be called
// concurrently with itself, Record, Flush, or Close (one ingester thread,
// many worker threads — the paper's sink is likewise a single tap point).
func (s *Sink) Ingest(batch []core.PacketDigest) {
	for i := range batch {
		s.ingestOne(batch[i])
	}
}

func (s *Sink) ingestOne(pkt core.PacketDigest) {
	if s.closed {
		panic("pipeline: Ingest after Close")
	}
	sh := s.shardOf(pkt.Flow)
	sh.buf = append(sh.buf, pkt)
	if len(sh.buf) == cap(sh.buf) {
		sh.dispatch()
	}
}

func (sh *shard) dispatch() {
	if len(sh.buf) == 0 {
		return
	}
	sh.ch <- sh.buf
	sh.buf = make([]core.PacketDigest, 0, cap(sh.buf))
}

// Flush dispatches every shard's partial buffer to its worker without
// waiting for the workers to drain.
func (s *Sink) Flush() {
	for _, sh := range s.shards {
		sh.dispatch()
	}
}

// start launches one worker goroutine per shard.
func (s *Sink) start() {
	for _, sh := range s.shards {
		s.wg.Add(1)
		go func(sh *shard) {
			defer s.wg.Done()
			for b := range sh.ch {
				if sh.err != nil {
					continue // drain after failure; keep Ingest unblocked
				}
				sh.err = sh.rec.RecordBatch(b)
			}
		}(sh)
	}
}

// Close flushes the buffers, runs the workers to completion, and returns
// the first recording error. After Close the answer methods are safe.
func (s *Sink) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.Flush()
	for _, sh := range s.shards {
		close(sh.ch)
	}
	s.wg.Wait()
	for _, sh := range s.shards {
		if sh.err != nil {
			return sh.err
		}
	}
	return nil
}

// Recording exposes the shard-private Recording that owns a flow's state.
func (s *Sink) Recording(flow core.FlowKey) *core.Recording {
	return s.shardOf(flow).rec
}

// TrackedFlows sums live flows across shards.
func (s *Sink) TrackedFlows() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.rec.TrackedFlows()
	}
	return n
}

// The answer methods below delegate to the owning shard — the
// deterministic merge: since a flow's state is wholly inside one shard,
// merging is routing.

// Path answers a path query for one flow.
func (s *Sink) Path(q *core.PathQuery, flow core.FlowKey) ([]uint64, bool) {
	return s.Recording(flow).Path(q, flow)
}

// PathInconsistencies returns the route-change signal for one flow.
func (s *Sink) PathInconsistencies(q *core.PathQuery, flow core.FlowKey) int {
	return s.Recording(flow).PathInconsistencies(q, flow)
}

// RouteChanged applies §7's route-change detection rule for one flow.
func (s *Sink) RouteChanged(q *core.PathQuery, flow core.FlowKey, threshold int) bool {
	return s.Recording(flow).RouteChanged(q, flow, threshold)
}

// LatencyQuantile answers a latency query for one (flow, hop).
func (s *Sink) LatencyQuantile(q *core.LatencyQuery, flow core.FlowKey, hop int, phi float64) (float64, error) {
	return s.Recording(flow).LatencyQuantile(q, flow, hop, phi)
}

// LatencySamples returns a (flow, hop)'s accumulated sample count.
func (s *Sink) LatencySamples(q *core.LatencyQuery, flow core.FlowKey, hop int) int {
	return s.Recording(flow).LatencySamples(q, flow, hop)
}

// UtilSeries answers a per-packet utilization query for one flow.
func (s *Sink) UtilSeries(q *core.UtilQuery, flow core.FlowKey) []float64 {
	return s.Recording(flow).UtilSeries(q, flow)
}

// FrequentValues answers a frequent-values query for one (flow, hop).
func (s *Sink) FrequentValues(q *core.FreqQuery, flow core.FlowKey, hop int, theta float64) []sketch.HeavyHitter {
	return s.Recording(flow).FrequentValues(q, flow, hop, theta)
}

// FreqSamples returns a frequent-values query's sample count for a hop.
func (s *Sink) FreqSamples(q *core.FreqQuery, flow core.FlowKey, hop int) int {
	return s.Recording(flow).FreqSamples(q, flow, hop)
}

// CountSeries answers a randomized-counting query for one flow.
func (s *Sink) CountSeries(q *core.CountQuery, flow core.FlowKey) []float64 {
	return s.Recording(flow).CountSeries(q, flow)
}
