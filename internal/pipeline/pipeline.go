// Package pipeline is the streaming collector of the reproduction: it
// shards sink-captured packets by flow key across a pool of workers, each
// owning a private core.Recording, so heavy digest streams ingest in
// parallel while every per-flow answer stays bit-identical to the serial
// path. Three properties make it run-forever capable:
//
//   - bounded flow state: each shard's flow table is governed by a
//     pluggable EvictionPolicy (LRU, admission-order cap, idle timeout),
//     and every evicted flow is surfaced through Config.OnEvict before
//     its state is dropped, so finalized answers are never silently lost;
//   - snapshot queries: Sink.Snapshot() returns a copy-on-read view whose
//     queries run concurrently with ingestion, without a global flush;
//   - a wire-friendly shape: Ingest consumes the same core.PacketDigest
//     batches internal/wire marshals, so a remote tap's stream replays
//     into the sink unchanged.
//
// Determinism argument: a flow's key maps to exactly one shard
// (hash.ShardOf), each shard is a single worker draining a FIFO, and both
// ingest surfaces — the serial Ingest/Record tap and the concurrent
// per-connection Stage/IngestStage path (stage.go) — append a flow's
// digests to its shard in the order the ingester saw them. core.Recording
// derives all sketch randomness from a (query, flow, hop) seed rather
// than arrival order, so a flow's state depends only on its own digest
// stream and the shared seed base — not on how flows interleave, how many
// shards exist, or how many connections fed the sink. Hence Sink(n
// shards, m ingesters) ≡ Sink(1) ≡ serial Recording, bit for bit, for
// any n and m.
package pipeline

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/sketch"
)

// Config shapes a sharded sink.
type Config struct {
	// Shards is the worker count; values < 1 mean 1 (serial in a worker).
	Shards int
	// BatchSize is how many packets buffer per shard before dispatch
	// (default 256). Smaller values lower latency, larger values lower
	// channel traffic.
	BatchSize int
	// QueueDepth is the per-shard channel capacity in batches (default 4).
	QueueDepth int
	// Base seeds every shard's Recording identically; required for
	// cross-shard-count reproducibility.
	Base hash.Seed
	// SketchItems / WindowBuckets / WindowSpan / FreqCounters / MaxFlows
	// mirror the core.Recording knobs. MaxFlows bounds flows *per shard*
	// (eviction is a per-shard LRU, so with MaxFlows > 0 the sharded and
	// serial paths may evict different flows — leave it 0 when exact
	// serial equivalence matters). Prefer Policy + OnEvict, which also
	// surface the evicted flows' answers; combining MaxFlows with Policy
	// is rejected by NewSink, because Recording-level evictions would
	// bypass OnEvict and desync the policy's flow table.
	SketchItems   int
	WindowBuckets int
	WindowSpan    uint64
	FreqCounters  int
	MaxFlows      int
	// Policy, when non-nil, builds one EvictionPolicy instance per shard;
	// the policy bounds that shard's flow table. The policy clock is the
	// shard's packet count.
	Policy func() EvictionPolicy
	// OnEvict, when non-nil, runs on the owning shard's worker goroutine
	// for every eviction, before the flow's state is dropped: rec still
	// holds the flow, so the callback can extract any finalized answers
	// (rec.Path(...), rec.LatencyQuantile(...), ...). The callback must
	// not retain rec and must not call Sink methods (the worker it would
	// wait on is the one running it).
	OnEvict func(ev Eviction, rec *core.Recording)
	// OnStall, when non-nil, runs on the ingester goroutine each time a
	// dispatch finds its shard's queue full and is about to block — the
	// sink's backpressure signal. A networked collector uses it to
	// observe (and let TCP flow control propagate) ingest pressure to
	// slow exporters. The callback must be fast and must not call Sink
	// methods.
	OnStall func(shard int)
}

// Sink is the sharded Recording Module. Ingest/Record feed it from one
// ingester goroutine; Snapshot serves concurrent readers at any time; the
// direct answer methods (Path, LatencyQuantile, …) are valid only after
// Close has drained the workers.
type Sink struct {
	engine *core.Engine
	cfg    Config
	shards []*shard
	wg     sync.WaitGroup
	// mu serializes Snapshot and Close so a snapshot request is never in
	// flight while the workers shut down. Ingest does not take it — the
	// single-ingester contract covers Ingest vs Close ordering.
	mu     sync.Mutex
	closed bool
	// barrier is the reusable Barrier reply channel; Barrier shares the
	// single-ingester contract with Ingest, so reuse is race-free.
	barrier chan struct{}
	// istage backs the serial Ingest path: routing through a sink-owned
	// Stage lets Ingest share stage.go's per-shard locking, so one serial
	// ingester may run alongside any number of IngestStage callers.
	istage *Stage
	// persist is the attached durability hook (see persist.go); nil-when-
	// detached costs the hot path one atomic load per batch.
	persist atomic.Pointer[persistBox]
	// ckptRound numbers Checkpoint barriers; ingester-goroutine only.
	ckptRound uint64
}

type shard struct {
	idx  int
	ch   chan []core.PacketDigest
	free chan []core.PacketDigest
	snap chan chan *core.Recording
	sync chan chan<- struct{}
	ckpt chan ckptReq
	exec chan execReq
	rec  *core.Recording
	// mu is the shard's ingest stripe lock: it guards buf and the
	// dispatch hand-off, serializing concurrent IngestStage callers (and
	// the serial Ingest path) per shard. The worker never takes it — the
	// worker owns everything past the channel.
	mu   sync.Mutex
	buf  []core.PacketDigest
	pol  EvictionPolicy
	now  uint64
	vict []Eviction
	// packets/batches/stalls are the shard's ingest counters, written on
	// the ingester goroutine at dispatch time and read from any goroutine
	// via Sink.Stats, hence atomic.
	packets atomic.Uint64
	batches atomic.Uint64
	stalls  atomic.Uint64
	// err holds the shard's first recording error; written by the worker,
	// read concurrently by Sink.Err, hence atomic.
	err atomic.Pointer[error]
}

func (sh *shard) fail(err error) { sh.err.Store(&err) }

func (sh *shard) failed() error {
	if p := sh.err.Load(); p != nil {
		return *p
	}
	return nil
}

// NewSink builds a sharded sink over an engine and starts its workers.
func NewSink(engine *core.Engine, cfg Config) (*Sink, error) {
	if engine == nil {
		return nil, fmt.Errorf("pipeline: nil engine")
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 256
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 4
	}
	if cfg.MaxFlows > 0 && (cfg.Policy != nil || cfg.OnEvict != nil) {
		return nil, fmt.Errorf("pipeline: MaxFlows is mutually exclusive with Policy/OnEvict" +
			" (Recording-level evictions bypass the eviction callback)")
	}
	s := &Sink{engine: engine, cfg: cfg, shards: make([]*shard, cfg.Shards),
		barrier: make(chan struct{}, cfg.Shards)}
	for i := range s.shards {
		rec, err := core.NewRecordingSeeded(engine, cfg.SketchItems, cfg.Base)
		if err != nil {
			return nil, err
		}
		if cfg.WindowBuckets > 0 {
			rec.WindowBuckets = cfg.WindowBuckets
			rec.WindowSpan = cfg.WindowSpan
		}
		if cfg.FreqCounters > 0 {
			rec.FreqCounters = cfg.FreqCounters
		}
		rec.MaxFlows = cfg.MaxFlows
		sh := &shard{
			idx:  i,
			ch:   make(chan []core.PacketDigest, cfg.QueueDepth),
			free: make(chan []core.PacketDigest, cfg.QueueDepth+1),
			snap: make(chan chan *core.Recording),
			sync: make(chan chan<- struct{}),
			ckpt: make(chan ckptReq),
			exec: make(chan execReq),
			rec:  rec,
			buf:  make([]core.PacketDigest, 0, cfg.BatchSize),
		}
		if cfg.Policy != nil {
			sh.pol = cfg.Policy()
		}
		s.shards[i] = sh
	}
	s.istage = s.NewStage()
	s.start()
	return s, nil
}

// ShardCount returns the number of shards/workers.
func (s *Sink) ShardCount() int { return len(s.shards) }

// shardOf maps a flow to its owning shard via hash.ShardOf — the one
// routing function shared with wire's fused decode-and-shard pass.
func (s *Sink) shardOf(flow core.FlowKey) *shard {
	return s.shards[hash.ShardOf(uint64(flow), uint64(len(s.shards)))]
}

// Record buffers one packet for its flow's shard.
func (s *Sink) Record(flow core.FlowKey, k int, pktID, digest uint64) {
	s.ingestOne(core.PacketDigest{Flow: flow, PktID: pktID, PathLen: k, Digest: digest})
}

// Ingest buffers a batch of packets, routing each to its flow's shard and
// dispatching any shard buffer that fills. It must not be called
// concurrently with itself, Record, Flush, or Close (one serial tap
// point), but it IS safe alongside any number of IngestStage callers:
// internally it stages into a sink-owned Stage and lands per-shard chunks
// under the same striped locks (stage.go). Snapshot may run concurrently
// from any goroutine.
//
// The loop is the collector's per-packet toll, so the closed check is
// hoisted out of it and the single-shard layout (where routing is the
// identity) skips both the per-packet flow hash and the staging copy,
// moving the batch in buffer-sized copies.
func (s *Sink) Ingest(batch []core.PacketDigest) {
	if len(batch) == 0 {
		return
	}
	if s.closed {
		panic("pipeline: Ingest after Close")
	}
	if len(s.shards) == 1 {
		s.ingestShard(s.shards[0], batch)
		return
	}
	st := s.istage
	mod := uint64(len(st.bufs))
	for i := range batch {
		sh := hash.ShardOf(uint64(batch[i].Flow), mod)
		st.bufs[sh] = append(st.bufs[sh], batch[i])
	}
	s.IngestStage(st)
}

func (s *Sink) ingestOne(pkt core.PacketDigest) {
	if s.closed {
		panic("pipeline: Ingest after Close")
	}
	one := [1]core.PacketDigest{pkt}
	s.ingestShard(s.shardOf(pkt.Flow), one[:])
}

// dispatchLocked hands the filled buffer to the worker and replaces it
// with a recycled one (workers return drained buffers on sh.free), so the
// steady-state ingest path allocates nothing. A full queue counts as one
// stall (and fires onStall) before blocking — the ingester-side
// backpressure signal. The caller holds sh.mu.
func (sh *shard) dispatchLocked(onStall func(int)) {
	if len(sh.buf) == 0 {
		return
	}
	size := cap(sh.buf)
	sh.packets.Add(uint64(len(sh.buf)))
	sh.batches.Add(1)
	select {
	case sh.ch <- sh.buf:
	default:
		sh.stalls.Add(1)
		if onStall != nil {
			onStall(sh.idx)
		}
		sh.ch <- sh.buf
	}
	select {
	case b := <-sh.free:
		sh.buf = b[:0]
	default:
		sh.buf = make([]core.PacketDigest, 0, size)
	}
}

// flushShard dispatches one shard's partial buffer under its stripe lock.
func (s *Sink) flushShard(sh *shard) {
	sh.mu.Lock()
	sh.dispatchLocked(s.cfg.OnStall)
	sh.mu.Unlock()
}

// Flush dispatches every shard's partial buffer to its worker without
// waiting for the workers to drain.
func (s *Sink) Flush() {
	for _, sh := range s.shards {
		s.flushShard(sh)
	}
}

// Barrier flushes every shard's partial buffer and blocks until all the
// packets ingested so far are recorded, so the ingester may read shard
// Recordings (via Recording or the answer methods) without racing the
// workers — until it ingests again. Unlike Close it leaves the workers
// running, which is what decode-progress harnesses need: ingest a packet,
// Barrier, ask the flow's decoder whether it just finished. It shares
// Ingest's single-ingester contract (never call it concurrently with
// Ingest, Record, Flush, or Close) and allocates nothing. After Close it
// is a no-op: everything is already drained.
func (s *Sink) Barrier() {
	if s.closed {
		return
	}
	for _, sh := range s.shards {
		s.flushShard(sh)
	}
	// Fan out first so the shards drain concurrently.
	for _, sh := range s.shards {
		sh.sync <- s.barrier
	}
	for range s.shards {
		<-s.barrier
	}
}

// execReq asks a shard worker to run a callback against its live
// Recording, on the worker goroutine, after draining everything queued.
type execReq struct {
	fn    func(*core.Recording) error
	reply chan error
}

// WithFlow runs fn against the live Recording of the shard that owns
// flow, on that shard's worker goroutine, after the worker has drained
// every batch already queued — so fn observes (and may mutate: drain a
// flow's state for hand-off, or fold a migrated flow in) a recording
// that is consistent with everything dispatched before the call, without
// racing ingest. It shares the whole-sink synchronization contract of
// Snapshot and Barrier: callers must order it against Close themselves
// (the collector's ingest gate does). After Close it runs fn directly —
// the workers are gone and the shards are fully drained.
func (s *Sink) WithFlow(flow core.FlowKey, fn func(*core.Recording) error) error {
	sh := s.shardOf(flow)
	s.mu.Lock()
	if s.closed {
		defer s.mu.Unlock()
		return fn(sh.rec)
	}
	s.mu.Unlock()
	req := execReq{fn: fn, reply: make(chan error)}
	sh.exec <- req
	return <-req.reply
}

// start launches one worker goroutine per shard.
func (s *Sink) start() {
	for _, sh := range s.shards {
		s.wg.Add(1)
		go func(sh *shard) {
			defer s.wg.Done()
			for {
				select {
				case b, ok := <-sh.ch:
					if !ok {
						return
					}
					sh.consume(b, s.cfg.OnEvict, s.persister())
					select {
					case sh.free <- b[:0]:
					default:
					}
				case req := <-sh.snap:
					// Serve the snapshot only after draining everything
					// already queued, so a snapshot taken after
					// Ingest+Flush (from the ingester, or synchronized
					// with it) observes all of it.
					sh.drainPending(s.cfg.OnEvict, s.persister())
					req <- sh.rec.Clone()
				case req := <-sh.sync:
					sh.drainPending(s.cfg.OnEvict, s.persister())
					req <- struct{}{}
				case req := <-sh.exec:
					// Same discipline as snapshots: the callback must see a
					// shard that has recorded everything dispatched to it.
					sh.drainPending(s.cfg.OnEvict, s.persister())
					req.reply <- req.fn(sh.rec)
				case req := <-sh.ckpt:
					// Drain first: the checkpoint must describe a shard
					// that has recorded everything dispatched to it.
					p := s.persister()
					sh.drainPending(s.cfg.OnEvict, p)
					if p != nil {
						p.PersistCheckpoint(CheckpointStats{
							Round:   req.round,
							Shard:   sh.idx,
							Shards:  len(s.shards),
							Packets: sh.packets.Load(),
							Flows:   sh.rec.TrackedFlows(),
						})
					}
					req.reply <- struct{}{}
				}
			}
		}(sh)
	}
}

// drainPending consumes every batch already queued without blocking.
func (sh *shard) drainPending(onEvict func(Eviction, *core.Recording), p Persister) {
	for {
		select {
		case b, ok := <-sh.ch:
			if !ok {
				// Close is serialized against Snapshot by Sink.mu, so the
				// channel cannot close mid-snapshot; guard anyway.
				return
			}
			sh.consume(b, onEvict, p)
			select {
			case sh.free <- b[:0]:
			default:
			}
		default:
			return
		}
	}
}

// consume records one batch, driving the eviction policy packet-by-packet
// so a victim's state is finalized (callback, then dropped) before any
// later packet is recorded — a flow is never half-evicted, and an evicted
// flow's re-arrival within the same batch starts a fresh flow.
func (sh *shard) consume(b []core.PacketDigest, onEvict func(Eviction, *core.Recording), p Persister) {
	if sh.failed() != nil {
		return // drain after failure; keep Ingest unblocked
	}
	if sh.pol == nil {
		sh.now += uint64(len(b))
		if err := sh.rec.RecordBatch(b); err != nil {
			sh.fail(err)
		}
		return
	}
	for i := range b {
		sh.now++
		sh.vict = sh.pol.Touch(b[i].Flow, sh.now, sh.vict[:0])
		for _, ev := range sh.vict {
			// Persist first: the durable record captures the flow's
			// finalized answers while rec still holds them, and the user
			// callback below may mutate nothing the persister needs.
			if p != nil {
				p.PersistEvict(sh.idx, ev, sh.rec)
			}
			if onEvict != nil {
				onEvict(ev, sh.rec)
			}
			sh.rec.Evict(ev.Flow)
		}
		if err := sh.rec.RecordBatch(b[i : i+1]); err != nil {
			sh.fail(err)
			return
		}
	}
}

// Snapshot returns a copy-on-read view of every shard's Recording, safe
// to take from any goroutine while ingestion continues. Each worker
// clones at a batch boundary after draining its queue, so the snapshot
// includes at least every packet dispatched (Ingest of a full batch, or
// Flush) before the call, happens-before respected. See Snapshot's doc
// for its own concurrency contract.
func (s *Sink) Snapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := make([]*core.Recording, len(s.shards))
	if s.closed {
		// Workers are gone; their Recordings are quiescent.
		for i, sh := range s.shards {
			recs[i] = sh.rec.Clone()
		}
		return &Snapshot{recs: recs}
	}
	// Fan the requests out first so the workers clone concurrently;
	// snapshot latency is then the slowest shard's clone, not the sum.
	replies := make([]chan *core.Recording, len(s.shards))
	for i, sh := range s.shards {
		replies[i] = make(chan *core.Recording, 1)
		sh.snap <- replies[i]
	}
	for i := range replies {
		recs[i] = <-replies[i]
	}
	return &Snapshot{recs: recs}
}

// ShardStats is one shard's ingest counters.
type ShardStats struct {
	// Packets and Batches count what the ingester dispatched to the
	// shard's worker (buffered-but-undispatched packets are not counted
	// until a full buffer, Flush, Barrier, or Close dispatches them).
	Packets uint64 `json:"packets"`
	Batches uint64 `json:"batches"`
	// Stalls counts dispatches that found the worker queue full and had
	// to block — nonzero means the workers are the bottleneck and
	// backpressure reached the ingester.
	Stalls uint64 `json:"stalls"`
	// Queued is the queue length in batches at the time of the call.
	Queued int `json:"queued"`
}

// Accumulate folds another counter set into s. It is the one aggregation
// rule the whole collector tier shares: Sink.Stats sums its shards with
// it, and a federated query frontend sums its fleet members' sink totals
// with it, so "packets across the deployment" means the same thing at
// every level.
func (s *ShardStats) Accumulate(o ShardStats) {
	s.Packets += o.Packets
	s.Batches += o.Batches
	s.Stalls += o.Stalls
	s.Queued += o.Queued
}

// SumShardStats folds any number of counter sets into one total.
func SumShardStats(stats ...ShardStats) ShardStats {
	var total ShardStats
	for _, st := range stats {
		total.Accumulate(st)
	}
	return total
}

// Stats returns per-shard ingest counters plus their totals. It is safe
// from any goroutine at any time (the counters are atomics and the queue
// length is a point-in-time read), which is what a collector daemon's
// status endpoint needs while ingestion runs.
func (s *Sink) Stats() (total ShardStats, perShard []ShardStats) {
	perShard = make([]ShardStats, len(s.shards))
	for i, sh := range s.shards {
		perShard[i] = ShardStats{
			Packets: sh.packets.Load(),
			Batches: sh.batches.Load(),
			Stalls:  sh.stalls.Load(),
			Queued:  len(sh.ch),
		}
		total.Accumulate(perShard[i])
	}
	return total, perShard
}

// Err returns the first recording error any shard has hit so far, or nil.
// A long-running collector that never Closes should check it alongside
// Snapshot: after a shard fails, that shard stops recording (its answers
// freeze) while the others continue.
func (s *Sink) Err() error {
	for _, sh := range s.shards {
		if err := sh.failed(); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes the buffers, runs the workers to completion, and returns
// the first recording error. After Close the answer methods are safe.
func (s *Sink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	for _, sh := range s.shards {
		s.flushShard(sh)
	}
	for _, sh := range s.shards {
		close(sh.ch)
	}
	s.wg.Wait()
	return s.Err()
}

// Recording exposes the shard-private Recording that owns a flow's state.
func (s *Sink) Recording(flow core.FlowKey) *core.Recording {
	return s.shardOf(flow).rec
}

// TrackedFlows sums live flows across shards.
func (s *Sink) TrackedFlows() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.rec.TrackedFlows()
	}
	return n
}

// The answer methods below delegate to the owning shard — the
// deterministic merge: since a flow's state is wholly inside one shard,
// merging is routing.

// Path answers a path query for one flow.
func (s *Sink) Path(q *core.PathQuery, flow core.FlowKey) ([]uint64, bool) {
	return s.Recording(flow).Path(q, flow)
}

// PathInconsistencies returns the route-change signal for one flow.
func (s *Sink) PathInconsistencies(q *core.PathQuery, flow core.FlowKey) int {
	return s.Recording(flow).PathInconsistencies(q, flow)
}

// RouteChanged applies §7's route-change detection rule for one flow.
func (s *Sink) RouteChanged(q *core.PathQuery, flow core.FlowKey, threshold int) bool {
	return s.Recording(flow).RouteChanged(q, flow, threshold)
}

// LatencyQuantile answers a latency query for one (flow, hop).
func (s *Sink) LatencyQuantile(q *core.LatencyQuery, flow core.FlowKey, hop int, phi float64) (float64, error) {
	return s.Recording(flow).LatencyQuantile(q, flow, hop, phi)
}

// LatencySamples returns a (flow, hop)'s accumulated sample count.
func (s *Sink) LatencySamples(q *core.LatencyQuery, flow core.FlowKey, hop int) int {
	return s.Recording(flow).LatencySamples(q, flow, hop)
}

// UtilSeries answers a per-packet utilization query for one flow.
func (s *Sink) UtilSeries(q *core.UtilQuery, flow core.FlowKey) []float64 {
	return s.Recording(flow).UtilSeries(q, flow)
}

// FrequentValues answers a frequent-values query for one (flow, hop).
func (s *Sink) FrequentValues(q *core.FreqQuery, flow core.FlowKey, hop int, theta float64) []sketch.HeavyHitter {
	return s.Recording(flow).FrequentValues(q, flow, hop, theta)
}

// FreqSamples returns a frequent-values query's sample count for a hop.
func (s *Sink) FreqSamples(q *core.FreqQuery, flow core.FlowKey, hop int) int {
	return s.Recording(flow).FreqSamples(q, flow, hop)
}

// CountSeries answers a randomized-counting query for one flow.
func (s *Sink) CountSeries(q *core.CountQuery, flow core.FlowKey) []float64 {
	return s.Recording(flow).CountSeries(q, flow)
}
