//go:build race

package pipeline

// raceEnabled mirrors the -race flag for tests whose assertions the race
// runtime itself invalidates (allocation-count pins: the race runtime
// instruments allocations and shadows them, inflating AllocsPerRun).
const raceEnabled = true
