package pipeline

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/hash"
)

// TestWithFlowSeesDispatchedIngest: the callback must observe everything
// Ingest dispatched before the call (the worker drains its queue first),
// and its mutations — eviction here, the hand-off drain in production —
// must be visible to later snapshots.
func TestWithFlowSeesDispatchedIngest(t *testing.T) {
	eng, _, _, _, _, _ := testPlan(t, 303)
	const (
		nFlows      = 8
		pktsPerFlow = 120
		k           = 6
	)
	pkts := encodeWorkload(eng, 11, nFlows, pktsPerFlow, k)
	sink, err := NewSink(eng, Config{Shards: 3, BatchSize: 32, Base: hash.Seed(0xF00)})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	sink.Ingest(pkts)

	flow := pkts[0].Flow
	// No Flush/Barrier in between: WithFlow itself must drain the queue.
	var sawPackets bool
	err = sink.WithFlow(flow, func(rec *core.Recording) error {
		if !rec.HasFlow(flow) {
			return errors.New("flow invisible to WithFlow after Ingest")
		}
		sawPackets = true
		rec.Evict(flow)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawPackets {
		t.Fatal("callback never ran")
	}
	// The eviction happened on the live shard recording, not a clone.
	merged, err := sink.Snapshot().Merged()
	if err != nil {
		t.Fatal(err)
	}
	if merged.HasFlow(flow) {
		t.Fatal("WithFlow eviction invisible to a later snapshot")
	}
	if got := len(merged.Flows()); got != nFlows-1 {
		t.Fatalf("%d flows after evicting one of %d", got, nFlows)
	}
}

// TestWithFlowErrorAndClose: callback errors propagate, and WithFlow
// still works after Close (it runs the callback directly on the drained
// shard).
func TestWithFlowErrorAndClose(t *testing.T) {
	eng, _, _, _, _, _ := testPlan(t, 304)
	pkts := encodeWorkload(eng, 13, 4, 60, 6)
	sink, err := NewSink(eng, Config{Shards: 2, Base: hash.Seed(0xF01)})
	if err != nil {
		t.Fatal(err)
	}
	sink.Ingest(pkts)

	boom := errors.New("boom")
	if err := sink.WithFlow(pkts[0].Flow, func(*core.Recording) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("callback error lost: %v", err)
	}

	sink.Close()
	flow := pkts[1].Flow
	var present bool
	if err := sink.WithFlow(flow, func(rec *core.Recording) error {
		present = rec.HasFlow(flow)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !present {
		t.Fatal("closed-sink WithFlow lost the flow")
	}
}
