package pipeline

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/wire"
)

// stageWorkload splits an encoded stream into per-connection streams the
// way a real deployment does: each flow belongs to exactly one
// connection, and a connection carries its flows' packets in arrival
// order. That is the ordering regime IngestStage promises to preserve.
func stageWorkload(pkts []core.PacketDigest, conns int) [][]core.PacketDigest {
	out := make([][]core.PacketDigest, conns)
	for i := range pkts {
		c := hash.Mix64(uint64(pkts[i].Flow)+1) % uint64(conns)
		out[c] = append(out[c], pkts[i])
	}
	return out
}

// TestConcurrentStageMatchesSerial is the determinism acceptance test for
// the concurrent ingest surface: conns goroutines, each with a private
// Stage, feed one sink concurrently, and every per-flow answer must be
// bit-identical to the serial Recording — across shard counts, connection
// counts, and whatever interleaving the scheduler produces. Run under
// -race this is also the data-race acceptance test for the striped locks.
func TestConcurrentStageMatchesSerial(t *testing.T) {
	eng, path, lat, util, freq, cnt := testPlan(t, 101)
	const (
		nFlows      = 24
		pktsPerFlow = 300
		k           = 6
	)
	pkts := encodeWorkload(eng, 7, nFlows, pktsPerFlow, k)
	base := hash.Seed(0xD1CE)

	serial, err := core.NewRecordingSeeded(eng, 0, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.RecordBatch(pkts); err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 3, 8} {
		for _, conns := range []int{1, 4} {
			sink, err := NewSink(eng, Config{Shards: shards, BatchSize: 64, Base: base})
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for _, stream := range stageWorkload(pkts, conns) {
				wg.Add(1)
				go func(stream []core.PacketDigest) {
					defer wg.Done()
					st := sink.NewStage()
					bufs := st.Buffers()
					mod := uint64(len(bufs))
					// Stage in frame-sized slices, landing each "frame"
					// like a connection goroutine would.
					const frame = 37 // unaligned with BatchSize on purpose
					for off := 0; off < len(stream); off += frame {
						end := min(off+frame, len(stream))
						for i := off; i < end; i++ {
							sh := hash.ShardOf(uint64(stream[i].Flow), mod)
							bufs[sh] = append(bufs[sh], stream[i])
						}
						st.IngestStage()
					}
				}(stream)
			}
			wg.Wait()
			if err := sink.Close(); err != nil {
				t.Fatal(err)
			}
			if got := sink.TrackedFlows(); got != serial.TrackedFlows() {
				t.Fatalf("shards=%d conns=%d: tracked %d flows, serial %d",
					shards, conns, got, serial.TrackedFlows())
			}
			for f := 0; f < nFlows; f++ {
				flow := core.FlowKey(uint64(f)*2654435761 + 1)
				compareFlow(t, shards, serial, sink, flow, k, path, lat, util, freq, cnt)
			}
		}
	}
}

// TestSerialIngestAlongsideStages pins the mixed contract: one serial
// Ingest caller may run concurrently with IngestStage callers, because
// Ingest routes through the same striped locks. Answers still match the
// serial Recording exactly.
func TestSerialIngestAlongsideStages(t *testing.T) {
	eng, path, lat, util, freq, cnt := testPlan(t, 101)
	const (
		nFlows      = 16
		pktsPerFlow = 200
		k           = 6
	)
	pkts := encodeWorkload(eng, 11, nFlows, pktsPerFlow, k)
	base := hash.Seed(0xFACE)

	serial, err := core.NewRecordingSeeded(eng, 0, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.RecordBatch(pkts); err != nil {
		t.Fatal(err)
	}

	sink, err := NewSink(eng, Config{Shards: 4, BatchSize: 64, Base: base})
	if err != nil {
		t.Fatal(err)
	}
	streams := stageWorkload(pkts, 3)
	var wg sync.WaitGroup
	// Connection 0 uses the serial surface; the rest use Stages.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for off := 0; off < len(streams[0]); off += 29 {
			end := min(off+29, len(streams[0]))
			sink.Ingest(streams[0][off:end])
		}
	}()
	for _, stream := range streams[1:] {
		wg.Add(1)
		go func(stream []core.PacketDigest) {
			defer wg.Done()
			st := sink.NewStage()
			bufs := st.Buffers()
			mod := uint64(len(bufs))
			for off := 0; off < len(stream); off += 41 {
				end := min(off+41, len(stream))
				for i := off; i < end; i++ {
					sh := hash.ShardOf(uint64(stream[i].Flow), mod)
					bufs[sh] = append(bufs[sh], stream[i])
				}
				st.IngestStage()
			}
		}(stream)
	}
	wg.Wait()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	for f := 0; f < nFlows; f++ {
		flow := core.FlowKey(uint64(f)*2654435761 + 1)
		compareFlow(t, 4, serial, sink, flow, k, path, lat, util, freq, cnt)
	}
}

// TestStageResetAfterDecodeError exercises the contract AppendUnmarshal-
// Sharded's doc imposes: a failed decode leaves an unspecified prefix
// staged, Reset discards it, and the stage remains usable — no stale
// packets leak into the next IngestStage.
func TestStageResetAfterDecodeError(t *testing.T) {
	eng, _, _, _, _, _ := testPlan(t, 101)
	pkts := encodeWorkload(eng, 3, 8, 4, 6)
	sink, err := NewSink(eng, Config{Shards: 4, BatchSize: 64, Base: hash.Seed(1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	good, err := wire.Marshal(pkts)
	if err != nil {
		t.Fatal(err)
	}
	st := sink.NewStage()
	if _, err := wire.AppendUnmarshalSharded(st.Buffers(), good[:len(good)-1]); err == nil {
		t.Fatal("truncated frame decoded")
	}
	st.Reset()
	if st.Len() != 0 {
		t.Fatalf("%d packets staged after Reset", st.Len())
	}
	if n, err := wire.AppendUnmarshalSharded(st.Buffers(), good); err != nil || n != len(pkts) {
		t.Fatalf("decode after Reset: n=%d err=%v", n, err)
	}
	if st.Len() != len(pkts) {
		t.Fatalf("staged %d packets, want %d", st.Len(), len(pkts))
	}
	st.IngestStage()
	if st.Len() != 0 {
		t.Fatalf("%d packets staged after IngestStage", st.Len())
	}
	sink.Barrier()
	total, _ := sink.Stats()
	if total.Packets+uint64(bufferedPackets(sink)) != uint64(len(pkts)) {
		t.Fatalf("sink holds %d dispatched + %d buffered packets, want %d",
			total.Packets, bufferedPackets(sink), len(pkts))
	}
}

func bufferedPackets(s *Sink) int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.buf)
		sh.mu.Unlock()
	}
	return n
}

// TestStageZeroAllocSteadyState pins the acceptance criterion for the
// per-connection decode path: once flows are admitted and the buffers are
// warm, frame payload → AppendUnmarshalSharded → IngestStage → Barrier
// allocates nothing. The plan is frequent-values only — the one query
// whose per-flow state is fixed-size — so every allocation the counter
// sees is a recycling leak in the decode/stage/dispatch machinery, not
// data-structure growth (KLL compactors and raw sample buffers grow
// O(log n) with the stream; that is real work, measured separately in
// the alloc probes that diagnosed BenchmarkSinkIngest's numbers).
func TestStageZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	master := hash.Seed(77)
	freq, err := core.NewFreqQuery("freq", 4, 1.0, master)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.Compile([]core.Query{freq}, 16, master.Derive(9))
	if err != nil {
		t.Fatal(err)
	}
	const k = 6
	pkts := encodeWorkload(eng, 5, 32, 64, k)
	payload, err := wire.Marshal(pkts)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := NewSink(eng, Config{
		Shards: 4, BatchSize: 256, Base: hash.Seed(0xD1CE)})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	st := sink.NewStage()
	ingestFrame := func() {
		if _, err := wire.AppendUnmarshalSharded(st.Buffers(), payload); err != nil {
			t.Fatal(err)
		}
		st.IngestStage()
	}
	// Warm up: admit every flow, grow the staging buffers and the
	// dispatch free lists to steady-state shape.
	for i := 0; i < 4; i++ {
		ingestFrame()
	}
	sink.Barrier()
	allocs := testing.AllocsPerRun(32, func() {
		ingestFrame()
		sink.Barrier()
	})
	if allocs != 0 {
		t.Errorf("steady-state decode path allocates %.1f/op, want 0", allocs)
	}
}
