package pipeline

import (
	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/sketch"
)

// Snapshot is a copy-on-read view of the sink's per-shard Recordings: the
// answer methods of Sink, answerable while ingestion keeps running. Each
// shard worker deep-clones its Recording at a batch boundary, so a
// snapshot is internally consistent per flow (never mid-packet) and
// reflects every packet dispatched to the workers before Snapshot was
// called from the ingesting goroutine (Flush first to include buffered
// packets). Packets ingested after the call may or may not be visible.
//
// A Snapshot is immutable from the sink's point of view — it shares no
// mutable state with the workers — but its own query methods are not safe
// for concurrent use with each other (sketch queries advance RNG state);
// give each querying goroutine its own Snapshot.
type Snapshot struct {
	recs []*core.Recording
}

// shardOf mirrors Sink.shardOf so a flow resolves to the same Recording.
func (s *Snapshot) shardOf(flow core.FlowKey) *core.Recording {
	return s.recs[hash.Mix64(uint64(flow))%uint64(len(s.recs))]
}

// Recording exposes the cloned Recording that owns a flow's state.
func (s *Snapshot) Recording(flow core.FlowKey) *core.Recording {
	return s.shardOf(flow)
}

// ShardCount returns the number of per-shard Recordings in the snapshot.
func (s *Snapshot) ShardCount() int { return len(s.recs) }

// TrackedFlows sums live flows across the snapshot's shards.
func (s *Snapshot) TrackedFlows() int {
	n := 0
	for _, rec := range s.recs {
		n += rec.TrackedFlows()
	}
	return n
}

// Merged folds the snapshot's per-shard Recordings into one, consuming
// the snapshot — the form to ship to a single downstream store. Shards
// hold disjoint flows, so the merge is pure adoption.
func (s *Snapshot) Merged() (*core.Recording, error) {
	merged := s.recs[0]
	for _, rec := range s.recs[1:] {
		if err := merged.Merge(rec); err != nil {
			return nil, err
		}
	}
	s.recs = []*core.Recording{merged}
	return merged, nil
}

// Path answers a path query for one flow.
func (s *Snapshot) Path(q *core.PathQuery, flow core.FlowKey) ([]uint64, bool) {
	return s.shardOf(flow).Path(q, flow)
}

// PathInconsistencies returns the route-change signal for one flow.
func (s *Snapshot) PathInconsistencies(q *core.PathQuery, flow core.FlowKey) int {
	return s.shardOf(flow).PathInconsistencies(q, flow)
}

// RouteChanged applies §7's route-change detection rule for one flow.
func (s *Snapshot) RouteChanged(q *core.PathQuery, flow core.FlowKey, threshold int) bool {
	return s.shardOf(flow).RouteChanged(q, flow, threshold)
}

// LatencyQuantile answers a latency query for one (flow, hop).
func (s *Snapshot) LatencyQuantile(q *core.LatencyQuery, flow core.FlowKey, hop int, phi float64) (float64, error) {
	return s.shardOf(flow).LatencyQuantile(q, flow, hop, phi)
}

// LatencySamples returns a (flow, hop)'s accumulated sample count.
func (s *Snapshot) LatencySamples(q *core.LatencyQuery, flow core.FlowKey, hop int) int {
	return s.shardOf(flow).LatencySamples(q, flow, hop)
}

// UtilSeries answers a per-packet utilization query for one flow.
func (s *Snapshot) UtilSeries(q *core.UtilQuery, flow core.FlowKey) []float64 {
	return s.shardOf(flow).UtilSeries(q, flow)
}

// FrequentValues answers a frequent-values query for one (flow, hop).
func (s *Snapshot) FrequentValues(q *core.FreqQuery, flow core.FlowKey, hop int, theta float64) []sketch.HeavyHitter {
	return s.shardOf(flow).FrequentValues(q, flow, hop, theta)
}

// FreqSamples returns a frequent-values query's sample count for a hop.
func (s *Snapshot) FreqSamples(q *core.FreqQuery, flow core.FlowKey, hop int) int {
	return s.shardOf(flow).FreqSamples(q, flow, hop)
}

// CountSeries answers a randomized-counting query for one flow.
func (s *Snapshot) CountSeries(q *core.CountQuery, flow core.FlowKey) []float64 {
	return s.shardOf(flow).CountSeries(q, flow)
}
