package pipeline

import (
	"fmt"

	"repro/internal/core"
)

// This file makes the collector's flow-state management an explicit,
// pluggable admission/eviction policy instead of an accident of map
// growth (the BASEL framing): each shard owns one EvictionPolicy instance
// over its private flow table, the policy decides which flows' state to
// finalize, and the sink surfaces every finalized flow through a callback
// so bounding memory never silently discards answers.

// EvictReason says why a flow was evicted.
type EvictReason uint8

const (
	// EvictCapacity: the policy's flow cap was exceeded and this flow was
	// the victim (least-recently-used or oldest-admitted, per policy).
	EvictCapacity EvictReason = iota
	// EvictIdle: the flow saw no packets for longer than the idle timeout.
	EvictIdle
)

// String implements fmt.Stringer.
func (r EvictReason) String() string {
	switch r {
	case EvictCapacity:
		return "capacity"
	case EvictIdle:
		return "idle"
	default:
		return fmt.Sprintf("EvictReason(%d)", uint8(r))
	}
}

// Eviction describes one finalized flow.
type Eviction struct {
	Flow core.FlowKey
	// Reason is why the policy chose this flow.
	Reason EvictReason
	// LastSeen is the policy clock (the owning shard's packet count) at
	// the flow's most recent packet.
	LastSeen uint64
}

// EvictionPolicy decides which flows keep live collector state. A policy
// instance is owned by exactly one shard worker and needs no internal
// locking; its clock is the shard's packet count, so policies behave
// identically regardless of wall-clock speed or shard count.
//
// The contract the sink (and the property tests) hold every policy to:
//
//   - Touch(flow, ...) never returns the touched flow as a victim,
//   - a victim is removed from the policy's table as it is returned, so a
//     flow is evicted at most once per admission (re-arrival re-admits it
//     as a fresh flow),
//   - Flows() never exceeds the policy's configured cap after Touch
//     returns.
type EvictionPolicy interface {
	// Touch records that flow had a packet at clock now, admitting it if
	// new, and appends any flows to evict to victims (typically
	// victims[:0] of a reused buffer), returning the extended slice.
	Touch(flow core.FlowKey, now uint64, victims []Eviction) []Eviction
	// Flows returns the number of flows currently admitted.
	Flows() int
}

// flowTable is the shared engine of the built-in policies: a map from
// flow to node joined with an intrusive doubly-linked list over a slice,
// plus a free list, so steady-state touches allocate nothing.
type flowTable struct {
	idx   map[core.FlowKey]int32
	nodes []flowNode
	head  int32 // most recent (LRU/idle) or newest admitted (FIFO)
	tail  int32 // least recent / oldest admitted
	free  []int32
}

type flowNode struct {
	flow       core.FlowKey
	last       uint64
	prev, next int32
}

const nilNode = int32(-1)

func newFlowTable() flowTable {
	return flowTable{idx: map[core.FlowKey]int32{}, head: nilNode, tail: nilNode}
}

func (t *flowTable) len() int { return len(t.idx) }

// pushFront links node i at the head.
func (t *flowTable) pushFront(i int32) {
	n := &t.nodes[i]
	n.prev, n.next = nilNode, t.head
	if t.head != nilNode {
		t.nodes[t.head].prev = i
	}
	t.head = i
	if t.tail == nilNode {
		t.tail = i
	}
}

// unlink removes node i from the list (the node stays allocated).
func (t *flowTable) unlink(i int32) {
	n := &t.nodes[i]
	if n.prev != nilNode {
		t.nodes[n.prev].next = n.next
	} else {
		t.head = n.next
	}
	if n.next != nilNode {
		t.nodes[n.next].prev = n.prev
	} else {
		t.tail = n.prev
	}
}

// admit inserts a new flow at the head and returns its node index.
func (t *flowTable) admit(flow core.FlowKey, now uint64) int32 {
	var i int32
	if n := len(t.free); n > 0 {
		i = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		t.nodes = append(t.nodes, flowNode{})
		i = int32(len(t.nodes) - 1)
	}
	t.nodes[i] = flowNode{flow: flow, last: now}
	t.idx[flow] = i
	t.pushFront(i)
	return i
}

// evictTail removes the tail flow and returns its eviction record.
func (t *flowTable) evictTail(reason EvictReason) Eviction {
	i := t.tail
	n := t.nodes[i]
	t.unlink(i)
	delete(t.idx, n.flow)
	t.free = append(t.free, i)
	return Eviction{Flow: n.flow, Reason: reason, LastSeen: n.last}
}

// lru evicts the least-recently-used flow beyond a cap.
type lru struct {
	t   flowTable
	cap int
}

// NewLRU returns a policy that admits every flow and, whenever more than
// maxFlows are live, evicts the least-recently-used one. maxFlows must be
// at least 1.
func NewLRU(maxFlows int) EvictionPolicy {
	if maxFlows < 1 {
		panic("pipeline: NewLRU needs maxFlows >= 1")
	}
	return &lru{t: newFlowTable(), cap: maxFlows}
}

func (p *lru) Flows() int { return p.t.len() }

func (p *lru) Touch(flow core.FlowKey, now uint64, victims []Eviction) []Eviction {
	if i, ok := p.t.idx[flow]; ok {
		p.t.nodes[i].last = now
		if p.t.head != i {
			p.t.unlink(i)
			p.t.pushFront(i)
		}
		return victims
	}
	p.t.admit(flow, now)
	for p.t.len() > p.cap {
		victims = append(victims, p.t.evictTail(EvictCapacity))
	}
	return victims
}

// maxFlows evicts the oldest-admitted flow beyond a cap (FIFO): recency
// does not rescue a flow, so a long-lived elephant eventually yields its
// slot — the admission-order analogue of the LRU policy.
type maxFlows struct {
	t   flowTable
	cap int
}

// NewMaxFlows returns a policy with a hard cap on live flows that evicts
// in admission order. maxFlows must be at least 1.
func NewMaxFlows(cap int) EvictionPolicy {
	if cap < 1 {
		panic("pipeline: NewMaxFlows needs a cap >= 1")
	}
	return &maxFlows{t: newFlowTable(), cap: cap}
}

func (p *maxFlows) Flows() int { return p.t.len() }

func (p *maxFlows) Touch(flow core.FlowKey, now uint64, victims []Eviction) []Eviction {
	if i, ok := p.t.idx[flow]; ok {
		p.t.nodes[i].last = now // position (admission order) is kept
		return victims
	}
	p.t.admit(flow, now)
	for p.t.len() > p.cap {
		victims = append(victims, p.t.evictTail(EvictCapacity))
	}
	return victims
}

// idleTimeout evicts flows that saw no packets for more than `timeout`
// ticks of the shard clock.
type idleTimeout struct {
	t       flowTable
	timeout uint64
}

// NewIdleTimeout returns a policy that finalizes a flow once it has been
// idle for more than timeout packets of shard traffic. timeout must be at
// least 1. The policy is lazy: expirations surface on the next packet the
// shard processes, which is exactly when memory pressure can next grow.
func NewIdleTimeout(timeout uint64) EvictionPolicy {
	if timeout < 1 {
		panic("pipeline: NewIdleTimeout needs timeout >= 1")
	}
	return &idleTimeout{t: newFlowTable(), timeout: timeout}
}

func (p *idleTimeout) Flows() int { return p.t.len() }

func (p *idleTimeout) Touch(flow core.FlowKey, now uint64, victims []Eviction) []Eviction {
	if i, ok := p.t.idx[flow]; ok {
		p.t.nodes[i].last = now
		if p.t.head != i {
			p.t.unlink(i)
			p.t.pushFront(i)
		}
	} else {
		p.t.admit(flow, now)
	}
	// The recency list is sorted by last-touch, so expired flows cluster
	// at the tail; pop until the tail is live. The flow just touched is
	// at the head with last == now, never expired (timeout >= 1).
	for p.t.tail != nilNode {
		n := &p.t.nodes[p.t.tail]
		if now-n.last <= p.timeout {
			break
		}
		victims = append(victims, p.t.evictTail(EvictIdle))
	}
	return victims
}
