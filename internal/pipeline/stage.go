package pipeline

import (
	"repro/internal/core"
)

// This file is the concurrent half of the sink's ingest surface. The
// classic path (Ingest/Record) is a single tap point; a multi-connection
// collector instead gives every connection its own Stage — a private set
// of per-shard staging buffers — and lands them with IngestStage, which
// takes only the locks of the shards a batch actually touched. The
// ingest fan-in then scales with connections × shards instead of
// serializing on one mutex:
//
//	conn 1 ─ decode → Stage ─┐            ┌─ shard 0 worker
//	conn 2 ─ decode → Stage ─┼─ striped ──┼─ shard 1 worker
//	conn N ─ decode → Stage ─┘   locks    └─ shard K worker
//
// Ordering model: a Stage is filled by one goroutine and IngestStage
// appends each shard's chunk atomically (under that shard's lock), so
// every flow's digests — which arrive on one connection and route to one
// shard — reach their worker in connection order. Cross-connection
// interleaving within a shard is arbitrary, and that is enough:
// core.Recording derives all randomness from (query, flow, hop) seeds,
// so per-flow answers depend only on the flow's own stream order.

// Stage is a per-ingester set of per-shard staging buffers, the
// destination array for wire.AppendUnmarshalSharded's fused
// decode-and-shard pass. A Stage belongs to one goroutine at a time;
// distinct Stages may be filled and ingested concurrently. The zero
// value is not usable — obtain one from Sink.NewStage.
type Stage struct {
	sink *Sink
	bufs [][]core.PacketDigest
}

// NewStage returns an empty Stage shaped for this sink's shard count.
// Its buffers are recycled across IngestStage calls, so a long-lived
// per-connection Stage reaches a zero-allocation steady state.
func (s *Sink) NewStage() *Stage {
	return &Stage{sink: s, bufs: make([][]core.PacketDigest, len(s.shards))}
}

// Buffers exposes the per-shard staging buffers, indexed by shard, for a
// decoder to append into (pass it straight to AppendUnmarshalSharded —
// the routing function is the shared hash.ShardOf, so decode-time
// routing and sink routing agree by construction). The returned slice is
// the Stage's own: appends through it are visible to IngestStage.
func (st *Stage) Buffers() [][]core.PacketDigest { return st.bufs }

// Len returns the number of packets currently staged.
func (st *Stage) Len() int {
	n := 0
	for i := range st.bufs {
		n += len(st.bufs[i])
	}
	return n
}

// Reset discards everything staged, keeping capacity. Callers must Reset
// after a decode error: a failed AppendUnmarshalSharded may have staged
// a prefix of the bad frame.
func (st *Stage) Reset() {
	for i := range st.bufs {
		st.bufs[i] = st.bufs[i][:0]
	}
}

// IngestStage lands every staged packet in its shard and empties the
// stage (capacity retained). Unlike Ingest it is safe to call from many
// goroutines at once, one Stage each: per-shard striped locks serialize
// the appends, and the persister (if attached) sees each shard's chunk
// under that shard's lock, so the durable log preserves per-shard append
// order — the property recovery replay needs (see persist.go).
//
// Backpressure: a full worker queue blocks the dispatch inside the
// owning shard's lock, which blocks this call — and only ingesters
// touching that shard — until the worker catches up. A networked
// collector therefore stalls exactly the connections feeding the hot
// shard, and TCP propagates the stall to their exporters.
func (st *Stage) IngestStage() {
	st.sink.IngestStage(st)
}

// IngestStage is the method form on Sink; see Stage.IngestStage.
func (s *Sink) IngestStage(st *Stage) {
	if s.closed {
		panic("pipeline: Ingest after Close")
	}
	for idx := range st.bufs {
		if len(st.bufs[idx]) == 0 {
			continue
		}
		s.ingestShard(s.shards[idx], st.bufs[idx])
		st.bufs[idx] = st.bufs[idx][:0]
	}
}

// ingestShard appends one shard's chunk under its stripe lock: log it
// (per-shard order = append order, the relaxed WAL property), then move
// it into the shard buffer in buffer-sized copies, dispatching each full
// buffer to the worker.
func (s *Sink) ingestShard(sh *shard, chunk []core.PacketDigest) {
	sh.mu.Lock()
	if p := s.persister(); p != nil {
		p.PersistIngest(chunk)
	}
	for len(chunk) > 0 {
		n := copy(sh.buf[len(sh.buf):cap(sh.buf)], chunk)
		sh.buf = sh.buf[:len(sh.buf)+n]
		chunk = chunk[n:]
		if len(sh.buf) == cap(sh.buf) {
			sh.dispatchLocked(s.cfg.OnStall)
		}
	}
	sh.mu.Unlock()
}
