package pipeline

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/hash"
)

// TestSnapshotMidStreamMatchesPrefix checks the snapshot completeness
// guarantee: a snapshot taken after Ingest+Flush from the ingesting
// goroutine answers exactly like a serial recording of the packets
// ingested so far — and stays frozen while ingestion continues.
func TestSnapshotMidStreamMatchesPrefix(t *testing.T) {
	eng, path, lat, util, freq, cnt := testPlan(t, 501)
	const (
		nFlows = 16
		k      = 6
	)
	pkts := encodeWorkload(eng, 13, nFlows, 400, k)
	base := hash.Seed(0xABAD)
	half := len(pkts) / 2

	sink, err := NewSink(eng, Config{Shards: 4, BatchSize: 32, SketchItems: 24, Base: base})
	if err != nil {
		t.Fatal(err)
	}
	sink.Ingest(pkts[:half])
	sink.Flush()
	snap := sink.Snapshot()

	halfSerial, err := core.NewRecordingSeeded(eng, 24, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := halfSerial.RecordBatch(pkts[:half]); err != nil {
		t.Fatal(err)
	}
	for f := 0; f < nFlows; f++ {
		flow := core.FlowKey(uint64(f)*2654435761 + 1)
		compareFlow(t, 4, halfSerial, snap, flow, k, path, lat, util, freq, cnt)
	}

	// Ingest the rest; the earlier snapshot must not move.
	sink.Ingest(pkts[half:])
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	before := snap.TrackedFlows()
	for f := 0; f < nFlows; f++ {
		flow := core.FlowKey(uint64(f)*2654435761 + 1)
		if got, want := snap.LatencySamples(lat, flow, 1), halfSerial.LatencySamples(lat, flow, 1); got != want {
			t.Fatalf("flow %d: snapshot samples moved to %d (want %d) after further ingest", flow, got, want)
		}
	}
	if snap.TrackedFlows() != before {
		t.Fatal("snapshot flow count moved after further ingest")
	}

	fullSerial, err := core.NewRecordingSeeded(eng, 24, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := fullSerial.RecordBatch(pkts); err != nil {
		t.Fatal(err)
	}
	for f := 0; f < nFlows; f++ {
		flow := core.FlowKey(uint64(f)*2654435761 + 1)
		compareFlow(t, 4, fullSerial, sink, flow, k, path, lat, util, freq, cnt)
	}
}

// TestSnapshotConcurrentWithIngest is the -race acceptance test: readers
// take snapshots and run every query kind while the ingester keeps
// feeding the sink. Per-flow sample counts must be monotone across a
// reader's successive snapshots (each snapshot reflects a prefix of the
// per-shard stream, and prefixes only grow).
func TestSnapshotConcurrentWithIngest(t *testing.T) {
	eng, path, lat, util, freq, cnt := testPlan(t, 601)
	const (
		nFlows  = 16
		k       = 6
		readers = 3
	)
	pkts := encodeWorkload(eng, 17, nFlows, 500, k)
	sink, err := NewSink(eng, Config{Shards: 4, BatchSize: 16, SketchItems: 24, Base: 0xF00D})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			last := make(map[core.FlowKey]int, nFlows)
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := sink.Snapshot()
				for f := 0; f < nFlows; f++ {
					flow := core.FlowKey(uint64(f)*2654435761 + 1)
					n := 0
					for hop := 1; hop <= k; hop++ {
						n += snap.LatencySamples(lat, flow, hop)
						if snap.LatencySamples(lat, flow, hop) > 0 {
							if _, err := snap.LatencyQuantile(lat, flow, hop, 0.5); err != nil {
								t.Errorf("reader %d: quantile: %v", r, err)
								return
							}
						}
						snap.FrequentValues(freq, flow, hop, 0.2)
					}
					snap.Path(path, flow)
					snap.UtilSeries(util, flow)
					snap.CountSeries(cnt, flow)
					if n < last[flow] {
						t.Errorf("reader %d flow %d: samples went backwards %d -> %d", r, flow, last[flow], n)
						return
					}
					last[flow] = n
				}
			}
		}(r)
	}

	for off := 0; off < len(pkts); off += 64 {
		end := min(off+64, len(pkts))
		sink.Ingest(pkts[off:end])
	}
	sink.Flush()
	close(done)
	wg.Wait()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	// A snapshot after Close equals the sink's own (drained) answers.
	snap := sink.Snapshot()
	for f := 0; f < nFlows; f++ {
		flow := core.FlowKey(uint64(f)*2654435761 + 1)
		compareFlow(t, 4, sink, snap, flow, k, path, lat, util, freq, cnt)
	}
}
