package pipeline

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/hash"
)

// recordingPersister captures every Persister callback in arrival order,
// copying what the contract says is only valid during the call.
type recordingPersister struct {
	mu      sync.Mutex
	batches [][]core.PacketDigest
	evicts  []Eviction
	answers []uint64 // per-evict: packets rec still held for the flow at callback time
	ckpts   []CheckpointStats
}

func (r *recordingPersister) PersistIngest(batch []core.PacketDigest) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.batches = append(r.batches, append([]core.PacketDigest(nil), batch...))
}

func (r *recordingPersister) PersistEvict(shard int, ev Eviction, rec *core.Recording) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evicts = append(r.evicts, ev)
	var held uint64
	if rec != nil {
		held = 1 // the flow must still be queryable during the callback
		for _, f := range rec.Flows() {
			if f == ev.Flow {
				held = 2
			}
		}
	}
	r.answers = append(r.answers, held)
}

func (r *recordingPersister) PersistCheckpoint(cp CheckpointStats) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ckpts = append(r.ckpts, cp)
}

// TestPersisterSeesPerShardOrder: PersistIngest observes single-shard
// chunks whose per-shard concatenation is exactly the per-shard
// subsequence of the arrival stream — the relaxed write-ahead-log
// property replay depends on (persist.go). Nothing is lost, nothing is
// duplicated, and within a shard nothing is reordered.
func TestPersisterSeesPerShardOrder(t *testing.T) {
	eng, _, _, _, _, _ := testPlan(t, 101)
	pkts := encodeWorkload(eng, 7, 12, 50, 6)
	for _, shards := range []int{1, 4} {
		p := &recordingPersister{}
		sink, err := NewSink(eng, Config{Shards: shards, BatchSize: 32, Base: hash.Seed(0xD1CE)})
		if err != nil {
			t.Fatal(err)
		}
		sink.SetPersister(p)
		const batchLen = 37 // deliberately unaligned with BatchSize
		for off := 0; off < len(pkts); off += batchLen {
			end := off + batchLen
			if end > len(pkts) {
				end = len(pkts)
			}
			sink.Ingest(pkts[off:end])
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		logged := make([][]core.PacketDigest, shards)
		var total int
		for bi, b := range p.batches {
			if len(b) == 0 {
				t.Fatalf("shards=%d: chunk %d is empty", shards, bi)
			}
			sh := hash.ShardOf(uint64(b[0].Flow), uint64(shards))
			for i := range b {
				if got := hash.ShardOf(uint64(b[i].Flow), uint64(shards)); got != sh {
					t.Fatalf("shards=%d: chunk %d mixes shard %d and shard %d", shards, bi, sh, got)
				}
			}
			logged[sh] = append(logged[sh], b...)
			total += len(b)
		}
		if total != len(pkts) {
			t.Fatalf("shards=%d: persister saw %d packets, want %d", shards, total, len(pkts))
		}
		want := make([][]core.PacketDigest, shards)
		for i := range pkts {
			sh := hash.ShardOf(uint64(pkts[i].Flow), uint64(shards))
			want[sh] = append(want[sh], pkts[i])
		}
		for sh := range logged {
			if len(logged[sh]) != len(want[sh]) {
				t.Fatalf("shards=%d shard %d: logged %d packets, want %d",
					shards, sh, len(logged[sh]), len(want[sh]))
			}
			for i := range logged[sh] {
				if logged[sh][i] != want[sh][i] {
					t.Fatalf("shards=%d shard %d: packet %d out of per-shard order", shards, sh, i)
				}
			}
		}
	}
}

// TestPersisterCheckpointRounds: Sink.Checkpoint barriers every shard
// and emits one record per shard whose packet counts sum to everything
// ingested — the conservation law recovery re-checks from the log.
func TestPersisterCheckpointRounds(t *testing.T) {
	eng, _, _, _, _, _ := testPlan(t, 101)
	pkts := encodeWorkload(eng, 7, 12, 40, 6)
	for _, shards := range []int{1, 4} {
		p := &recordingPersister{}
		sink, err := NewSink(eng, Config{Shards: shards, BatchSize: 64, Base: hash.Seed(0xD1CE)})
		if err != nil {
			t.Fatal(err)
		}
		sink.SetPersister(p)
		half := len(pkts) / 2
		sink.Ingest(pkts[:half])
		if round := sink.Checkpoint(); round != 1 {
			t.Fatalf("first checkpoint round %d", round)
		}
		sink.Ingest(pkts[half:])
		if round := sink.Checkpoint(); round != 2 {
			t.Fatalf("second checkpoint round %d", round)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}

		if len(p.ckpts) != 2*shards {
			t.Fatalf("shards=%d: %d checkpoint records, want %d", shards, len(p.ckpts), 2*shards)
		}
		sums := map[uint64]uint64{}
		perRound := map[uint64]int{}
		for _, cp := range p.ckpts {
			if cp.Shards != shards || cp.Shard < 0 || cp.Shard >= shards {
				t.Fatalf("malformed checkpoint record %+v", cp)
			}
			sums[cp.Round] += cp.Packets
			perRound[cp.Round]++
		}
		if perRound[1] != shards || perRound[2] != shards {
			t.Fatalf("shards=%d: incomplete rounds %v", shards, perRound)
		}
		if sums[1] != uint64(half) {
			t.Fatalf("shards=%d: round 1 covers %d packets, want %d", shards, sums[1], half)
		}
		if sums[2] != uint64(len(pkts)) {
			t.Fatalf("shards=%d: round 2 covers %d packets, want %d", shards, sums[2], len(pkts))
		}
	}
}

// TestPersisterEvictBeforeDrop: every eviction reaches the persister
// while the Recording still holds the flow, and in the same stream the
// OnEvict callback sees.
func TestPersisterEvictBeforeDrop(t *testing.T) {
	eng, _, _, _, _, _ := testPlan(t, 101)
	pkts := encodeWorkload(eng, 7, 24, 30, 6)
	p := &recordingPersister{}
	var evictMu sync.Mutex // OnEvict runs on each shard's goroutine
	var onEvict []Eviction
	sink, err := NewSink(eng, Config{
		Shards: 2, BatchSize: 32, Base: hash.Seed(0xD1CE),
		Policy: func() EvictionPolicy { return NewLRU(4) },
		OnEvict: func(ev Eviction, rec *core.Recording) {
			evictMu.Lock()
			onEvict = append(onEvict, ev)
			evictMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sink.SetPersister(p)
	sink.Ingest(pkts)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if len(p.evicts) == 0 {
		t.Fatal("LRU policy evicted nothing")
	}
	if len(p.evicts) != len(onEvict) {
		t.Fatalf("persister saw %d evictions, OnEvict saw %d", len(p.evicts), len(onEvict))
	}
	for i, held := range p.answers {
		if held != 2 {
			t.Fatalf("eviction %d: flow %d already dropped when persisted", i, p.evicts[i].Flow)
		}
	}
}

// TestSetPersisterDetach: a nil persister detaches cleanly and a replay
// (persister-less ingest) is never re-logged.
func TestSetPersisterDetach(t *testing.T) {
	eng, _, _, _, _, _ := testPlan(t, 101)
	pkts := encodeWorkload(eng, 7, 6, 20, 6)
	p := &recordingPersister{}
	sink, err := NewSink(eng, Config{Shards: 2, Base: hash.Seed(0xD1CE)})
	if err != nil {
		t.Fatal(err)
	}
	sink.Ingest(pkts[:50]) // replay phase: no persister attached
	sink.SetPersister(p)
	sink.Ingest(pkts[50:100])
	sink.SetPersister(nil)
	sink.Ingest(pkts[100:])
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	var logged int
	for _, b := range p.batches {
		logged += len(b)
	}
	if logged != 50 {
		t.Fatalf("persister logged %d packets, want exactly the attached window of 50", logged)
	}
}
