//go:build !race

package pipeline

const raceEnabled = false
